package ddmcpp

import (
	"bufio"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// directiveRE recognizes a DDM pragma line and captures its payload.
var directiveRE = regexp.MustCompile(`^\s*//\s*#pragma\s+ddm\b\s*(.*?)\s*$`)

// clauseRE matches one `key(arg,arg,...)` clause.
var clauseRE = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)\((.*)\)$`)

// parserState tracks where in the file the parser is.
type parserState int

const (
	stPrelude parserState = iota // before startprogram
	stProgram                    // inside program, outside any thread
	stThread                     // inside thread ... endthread
	stDone                       // after endprogram
)

// Parse reads annotated source and returns its AST. It is the
// target-independent half of the preprocessor front-end; call Analyze on
// the result before code generation.
func Parse(name string, r io.Reader) (*File, error) {
	f := &File{Input: name, Name: "ddm"}
	state := stPrelude
	var curBlock *Block
	var curThread *Thread
	lineNo := 0

	ensureBlock := func(line int) {
		if curBlock == nil {
			curBlock = &Block{Line: line}
			f.Blocks = append(f.Blocks, curBlock)
		}
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		m := directiveRE.FindStringSubmatch(line)
		if m == nil {
			switch state {
			case stPrelude:
				f.Prelude = append(f.Prelude, line)
			case stProgram:
				f.Setup = append(f.Setup, line)
			case stThread:
				curThread.Body = append(curThread.Body, line)
			case stDone:
				if strings.TrimSpace(line) != "" {
					return nil, errf(name, lineNo, "content after endprogram")
				}
			}
			continue
		}
		fields := splitDirective(m[1])
		if len(fields) == 0 {
			return nil, errf(name, lineNo, "empty ddm directive")
		}
		kw := fields[0]
		args := fields[1:]
		if state == stPrelude && kw != "startprogram" && kw != "use" {
			return nil, errf(name, lineNo, "directive %q before startprogram", kw)
		}
		if state == stDone {
			return nil, errf(name, lineNo, "directive %q after endprogram", kw)
		}
		switch kw {
		case "startprogram":
			if state != stPrelude {
				return nil, errf(name, lineNo, "startprogram must be the first directive")
			}
			state = stProgram
			for _, a := range args {
				key, vals, ok := clause(a)
				if !ok || key != "name" || len(vals) != 1 {
					return nil, errf(name, lineNo, "bad startprogram argument %q (want name(ident))", a)
				}
				f.Name = vals[0]
			}
		case "endprogram":
			if state != stProgram {
				return nil, errf(name, lineNo, "endprogram outside program (missing endthread/endblock?)")
			}
			state = stDone
		case "use":
			if state == stThread || state == stDone {
				return nil, errf(name, lineNo, "use directive not allowed here")
			}
			if len(args) != 1 {
				return nil, errf(name, lineNo, "use wants one import path")
			}
			f.Uses = append(f.Uses, strings.Trim(args[0], `"`))
		case "var":
			if state != stProgram {
				return nil, errf(name, lineNo, "var directive must appear inside the program, outside threads")
			}
			v, err := parseVar(name, lineNo, args)
			if err != nil {
				return nil, err
			}
			f.Vars = append(f.Vars, v)
		case "block":
			if state != stProgram {
				return nil, errf(name, lineNo, "block directive inside a thread")
			}
			curBlock = &Block{Line: lineNo}
			f.Blocks = append(f.Blocks, curBlock)
		case "endblock":
			if state != stProgram || curBlock == nil {
				return nil, errf(name, lineNo, "endblock without open block")
			}
			curBlock = nil
		case "thread":
			if state != stProgram {
				return nil, errf(name, lineNo, "thread directive not allowed here (nested thread?)")
			}
			th, err := parseThread(name, lineNo, args)
			if err != nil {
				return nil, err
			}
			if th.IsLoop {
				return nil, errf(name, lineNo, "range/unroll clauses are only valid on `for thread` directives")
			}
			ensureBlock(lineNo)
			curBlock.Threads = append(curBlock.Threads, th)
			curThread = th
			state = stThread
		case "for":
			// Loop thread: `for thread <id> range(lo,hi) [unroll(n)] ...`.
			if state != stProgram {
				return nil, errf(name, lineNo, "for-thread directive not allowed here")
			}
			if len(args) == 0 || args[0] != "thread" {
				return nil, errf(name, lineNo, "for wants: for thread <id> range(lo,hi) [unroll(n)] ...")
			}
			th, err := parseForThread(name, lineNo, args[1:])
			if err != nil {
				return nil, err
			}
			ensureBlock(lineNo)
			curBlock.Threads = append(curBlock.Threads, th)
			curThread = th
			state = stThread
		case "endthread":
			if state != stThread {
				return nil, errf(name, lineNo, "endthread without open thread")
			}
			if curThread.IsLoop {
				return nil, errf(name, lineNo, "loop thread %d must end with endfor", curThread.ID)
			}
			curThread = nil
			state = stProgram
		case "endfor":
			if state != stThread || !curThread.IsLoop {
				return nil, errf(name, lineNo, "endfor without open for-thread")
			}
			curThread = nil
			state = stProgram
		default:
			return nil, errf(name, lineNo, "unknown ddm directive %q", kw)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	switch state {
	case stPrelude:
		return nil, errf(name, lineNo, "no startprogram directive found")
	case stProgram:
		return nil, errf(name, lineNo, "missing endprogram")
	case stThread:
		return nil, errf(name, lineNo, "missing endthread for thread %d", curThread.ID)
	}
	return f, nil
}

// parseThread parses `thread <id> [clauses...]`.
func parseThread(file string, line int, args []string) (*Thread, error) {
	if len(args) == 0 {
		return nil, errf(file, line, "thread wants an integer id")
	}
	id, err := strconv.Atoi(args[0])
	if err != nil || id <= 0 {
		return nil, errf(file, line, "bad thread id %q (want positive integer)", args[0])
	}
	th := &Thread{ID: id, Line: line, Instances: 1, Kernel: -1}
	for _, a := range args[1:] {
		key, vals, ok := clause(a)
		if !ok {
			return nil, errf(file, line, "bad thread clause %q", a)
		}
		switch key {
		case "instances":
			if len(vals) != 1 {
				return nil, errf(file, line, "instances wants one integer")
			}
			n, err := strconv.Atoi(vals[0])
			if err != nil || n < 1 {
				return nil, errf(file, line, "bad instances %q", vals[0])
			}
			th.Instances = n
		case "cost":
			if len(vals) != 1 {
				return nil, errf(file, line, "cost wants one integer (cycles per instance)")
			}
			n, err := strconv.ParseInt(vals[0], 10, 64)
			if err != nil || n < 1 {
				return nil, errf(file, line, "bad cost %q", vals[0])
			}
			th.Cost = n
		case "kernel":
			if len(vals) != 1 {
				return nil, errf(file, line, "kernel wants one integer")
			}
			k, err := strconv.Atoi(vals[0])
			if err != nil || k < 0 {
				return nil, errf(file, line, "bad kernel %q", vals[0])
			}
			th.Kernel = k
		case "import":
			for _, v := range vals {
				ref, err := parseVarRef(file, line, v)
				if err != nil {
					return nil, err
				}
				th.Imports = append(th.Imports, ref)
			}
		case "export":
			for _, v := range vals {
				ref, err := parseVarRef(file, line, v)
				if err != nil {
					return nil, err
				}
				th.Exports = append(th.Exports, ref)
			}
		case "depends":
			for _, v := range vals {
				d, err := parseDep(file, line, v)
				if err != nil {
					return nil, err
				}
				th.Depends = append(th.Depends, d)
			}
		case "range", "unroll":
			// Loop-thread clauses, validated by parseForThread; plain
			// threads reject them below via the loop flag check.
			th.IsLoop = true
		default:
			return nil, errf(file, line, "unknown thread clause %q", key)
		}
	}
	return th, nil
}

// parseVarRef parses one import/export entry: `name` or `name:chunk`.
func parseVarRef(file string, line int, s string) (VarRef, error) {
	parts := strings.Split(s, ":")
	ref := VarRef{Name: strings.TrimSpace(parts[0])}
	switch {
	case ref.Name == "":
		return VarRef{}, errf(file, line, "empty var reference %q", s)
	case len(parts) == 1:
	case len(parts) == 2 && strings.TrimSpace(parts[1]) == "chunk":
		ref.Chunked = true
	default:
		return VarRef{}, errf(file, line, "bad var reference %q (want name or name:chunk)", s)
	}
	return ref, nil
}

// varElemSize maps typed-var type names to element byte sizes.
var varElemSize = map[string]int64{"byte": 1, "u32": 4, "i32": 4, "f64": 8, "c128": 16}

// parseVar parses `var <name> <bytes>` or `var <name> <type> <count>`.
func parseVar(file string, line int, args []string) (Var, error) {
	switch len(args) {
	case 2:
		size, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil || size <= 0 {
			return Var{}, errf(file, line, "var %s: bad size %q", args[0], args[1])
		}
		return Var{Name: args[0], Size: size, Line: line}, nil
	case 3:
		elem, ok := varElemSize[args[1]]
		if !ok {
			return Var{}, errf(file, line, "var %s: unknown type %q (want byte|u32|i32|f64|c128)", args[0], args[1])
		}
		count, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil || count <= 0 {
			return Var{}, errf(file, line, "var %s: bad count %q", args[0], args[2])
		}
		return Var{Name: args[0], Type: args[1], Count: count, Size: count * elem, Line: line}, nil
	}
	return Var{}, errf(file, line, "var wants: var <name> <bytes> or var <name> <type> <count>")
}

// parseForThread parses the loop-thread form. The range and unroll
// clauses determine the instance count: ceil((hi-lo)/unroll).
func parseForThread(file string, line int, args []string) (*Thread, error) {
	th, err := parseThread(file, line, args)
	if err != nil {
		return nil, err
	}
	th.IsLoop = true
	th.Unroll = 1
	haveRange := false
	// Re-scan the clauses parseThread does not know about.
	for _, a := range args[1:] {
		key, vals, ok := clause(a)
		if !ok {
			continue
		}
		switch key {
		case "range":
			if len(vals) != 2 {
				return nil, errf(file, line, "range wants two integers: range(lo,hi)")
			}
			lo, err1 := strconv.Atoi(vals[0])
			hi, err2 := strconv.Atoi(vals[1])
			if err1 != nil || err2 != nil || hi <= lo {
				return nil, errf(file, line, "bad range (%s,%s)", vals[0], vals[1])
			}
			th.RangeLo, th.RangeHi = lo, hi
			haveRange = true
		case "unroll":
			if len(vals) != 1 {
				return nil, errf(file, line, "unroll wants one integer")
			}
			u, err := strconv.Atoi(vals[0])
			if err != nil || u < 1 {
				return nil, errf(file, line, "bad unroll %q", vals[0])
			}
			th.Unroll = u
		}
	}
	if !haveRange {
		return nil, errf(file, line, "for thread %d needs a range(lo,hi) clause", th.ID)
	}
	if th.Instances != 1 {
		return nil, errf(file, line, "for thread %d: instances() is derived from range/unroll; do not set it", th.ID)
	}
	total := th.RangeHi - th.RangeLo
	th.Instances = (total + th.Unroll - 1) / th.Unroll
	return th, nil
}

// parseDep parses `id`, `id:map` or `id:map:arg`.
func parseDep(file string, line int, s string) (Dep, error) {
	parts := strings.Split(s, ":")
	id, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil || id <= 0 {
		return Dep{}, errf(file, line, "bad depends id %q", parts[0])
	}
	d := Dep{On: id, Map: MapDefault, Line: line}
	if len(parts) >= 2 {
		switch strings.TrimSpace(parts[1]) {
		case "one":
			d.Map = MapOne
		case "all":
			d.Map = MapAll
		case "broadcast":
			d.Map = MapBroadcast
		case "gather":
			d.Map = MapGather
		case "scatter":
			d.Map = MapScatter
		default:
			return Dep{}, errf(file, line, "unknown mapping %q (want one|all|broadcast|gather|scatter)", parts[1])
		}
	}
	if d.Map == MapGather || d.Map == MapScatter {
		if len(parts) != 3 {
			return Dep{}, errf(file, line, "%s mapping wants a fan: %s:<n>", d.Map, d.Map)
		}
		fan, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil || fan < 1 {
			return Dep{}, errf(file, line, "bad fan %q", parts[2])
		}
		d.Arg = fan
	} else if len(parts) > 2 {
		return Dep{}, errf(file, line, "mapping %q takes no argument", parts[1])
	}
	return d, nil
}

// splitDirective tokenizes a directive payload into words, keeping
// parenthesized clauses (which may contain spaces and commas) intact.
func splitDirective(s string) []string {
	var out []string
	var cur strings.Builder
	depth := 0
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case r == '(':
			depth++
			cur.WriteRune(r)
		case r == ')':
			depth--
			cur.WriteRune(r)
		case (r == ' ' || r == '\t') && depth == 0:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

// clause splits `key(a, b, c)` into its key and trimmed arguments.
func clause(s string) (key string, vals []string, ok bool) {
	m := clauseRE.FindStringSubmatch(s)
	if m == nil {
		return "", nil, false
	}
	if strings.TrimSpace(m[2]) == "" {
		return m[1], nil, true
	}
	for _, v := range strings.Split(m[2], ",") {
		vals = append(vals, strings.TrimSpace(v))
	}
	return m[1], vals, true
}
