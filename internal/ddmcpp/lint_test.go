package ddmcpp

import (
	"os"
	"strings"
	"testing"

	"tflux/internal/core"
	"tflux/internal/ddmlint"
)

func TestParseChunkedVarRef(t *testing.T) {
	src := "//#pragma ddm startprogram\n" +
		"//#pragma ddm var vec f64 8\n" +
		"//#pragma ddm thread 1 instances(8) import(vec) export(vec:chunk)\n" +
		"_ = ctx\n//#pragma ddm endthread\n//#pragma ddm endprogram\n"
	f := mustParse(t, src)
	th := f.Blocks[0].Threads[0]
	if len(th.Imports) != 1 || th.Imports[0].Chunked {
		t.Fatalf("imports = %+v, want plain vec", th.Imports)
	}
	if len(th.Exports) != 1 || !th.Exports[0].Chunked || th.Exports[0].Name != "vec" {
		t.Fatalf("exports = %+v, want vec:chunk", th.Exports)
	}
	if th.Exports[0].String() != "vec:chunk" || th.Imports[0].String() != "vec" {
		t.Fatalf("String() = %q / %q", th.Exports[0], th.Imports[0])
	}
	if err := Analyze(f); err != nil {
		t.Fatal(err)
	}
}

func TestParseBadVarRef(t *testing.T) {
	for _, bad := range []string{"vec:banana", "vec:chunk:extra", ":chunk"} {
		src := "//#pragma ddm startprogram\n" +
			"//#pragma ddm thread 1 export(" + bad + ")\n" +
			"//#pragma ddm endthread\n//#pragma ddm endprogram\n"
		_, err := parseString(t, src)
		if err == nil || !strings.Contains(err.Error(), "var reference") {
			t.Errorf("export(%s): err = %v, want bad var reference", bad, err)
		}
	}
}

// TestProcessDiagRaceWarning compiles the testdata pipeline — whose
// multi-instance threads export the whole of vec — and checks the
// write-conflict comes back as a positioned warning, not an error.
func TestProcessDiagRaceWarning(t *testing.T) {
	in, err := os.Open("testdata/pipeline.ddm")
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	code, warnings, err := ProcessDiag("testdata/pipeline.ddm", in, TargetSoft)
	if err != nil {
		t.Fatalf("compile failed: %v", err)
	}
	if len(code) == 0 {
		t.Fatal("no code generated")
	}
	if len(warnings) == 0 {
		t.Fatal("expected write-conflict warnings for whole-buffer multi-instance exports")
	}
	for _, w := range warnings {
		if !strings.HasPrefix(w, "testdata/pipeline.ddm:") || !strings.Contains(w, "ddmlint:") {
			t.Fatalf("warning lacks position or ddmlint prefix: %q", w)
		}
	}
	if !strings.Contains(warnings[0], "vec") {
		t.Fatalf("warning does not name the buffer: %q", warnings[0])
	}
}

// TestProcessDiagCyclePositioned exercises a dependency cycle that
// Analyze cannot see (it only rejects self-deps): the Validate failure
// must surface as a positioned error at the block's line, not a bare
// internal error.
func TestProcessDiagCyclePositioned(t *testing.T) {
	src := "//#pragma ddm startprogram name(loopy)\n" +
		"//#pragma ddm thread 1\n_ = ctx\n//#pragma ddm endthread\n" + // implicit block opens at line 2
		"//#pragma ddm thread 2 depends(1) depends(3)\n_ = ctx\n//#pragma ddm endthread\n" +
		"//#pragma ddm thread 3 depends(2)\n_ = ctx\n//#pragma ddm endthread\n" +
		"//#pragma ddm endprogram\n"
	_, _, err := ProcessDiag("cycle.ddm", strings.NewReader(src), TargetSoft)
	if err == nil {
		t.Fatal("cyclic program compiled")
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "cycle.ddm:2:") {
		t.Fatalf("error not positioned at the block line: %q", msg)
	}
	if !strings.Contains(msg, "cycle") {
		t.Fatalf("error does not mention the cycle: %q", msg)
	}
}

func TestDistTargetChunkedExportCompiles(t *testing.T) {
	src := "//#pragma ddm startprogram name(dchunk)\n" +
		"//#pragma ddm var v f64 8\n" +
		"//#pragma ddm thread 1 instances(8) export(v:chunk)\n" +
		"v[int(ctx)] = 1\n//#pragma ddm endthread\n" +
		"//#pragma ddm thread 2 depends(1:all) import(v)\n_ = v\n//#pragma ddm endthread\n" +
		"//#pragma ddm endprogram\n"
	f := mustParse(t, src)
	if err := Analyze(f); err != nil {
		t.Fatal(err)
	}
	out, err := Generate(f, TargetDist)
	if err != nil {
		t.Fatalf("chunked multi-instance export rejected on dist: %v", err)
	}
	for _, want := range []string{
		"func ddmChunkRegion(",
		`ddmChunkRegion("v", 64, 8, 8, int(rctx), true)`,
	} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("dist output missing %q:\n%s", want, out)
		}
	}
}

func TestDistTargetWholeExportSuggestsChunk(t *testing.T) {
	src := "//#pragma ddm startprogram\n" +
		"//#pragma ddm var v f64 8\n" +
		"//#pragma ddm thread 1 instances(8) export(v)\n_ = ctx\n//#pragma ddm endthread\n" +
		"//#pragma ddm endprogram\n"
	f := mustParse(t, src)
	if err := Analyze(f); err != nil {
		t.Fatal(err)
	}
	_, err := Generate(f, TargetDist)
	if err == nil || !strings.Contains(err.Error(), `"v:chunk"`) {
		t.Fatalf("err = %v, want a :chunk suggestion", err)
	}
}

// TestBuildCoreMirrorsGenerate checks the compile-time model BuildCore
// hands to the verifier matches what the generated program builds:
// thread shapes, mappings, buffers, and per-instance chunk regions that
// partition the buffer exactly.
func TestBuildCoreMirrorsGenerate(t *testing.T) {
	src := "//#pragma ddm startprogram name(model)\n" +
		"//#pragma ddm var vec f64 10\n" +
		"//#pragma ddm thread 1 instances(4) kernel(2) export(vec:chunk)\n" +
		"_ = ctx\n//#pragma ddm endthread\n" +
		"//#pragma ddm thread 2 depends(1:all) import(vec)\n_ = vec\n//#pragma ddm endthread\n" +
		"//#pragma ddm endprogram\n"
	f := mustParse(t, src)
	if err := Analyze(f); err != nil {
		t.Fatal(err)
	}
	p, lines, err := BuildCore(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("model program invalid: %v", err)
	}
	if lines[1] == 0 || lines[2] == 0 {
		t.Fatalf("missing directive lines: %v", lines)
	}
	t1 := p.Template(1)
	if t1 == nil || t1.Instances != 4 || t1.Affinity != 2 {
		t.Fatalf("thread 1 model = %+v", t1)
	}
	if len(t1.Arcs) != 1 || t1.Arcs[0].To != 2 {
		t.Fatalf("thread 1 arcs = %+v", t1.Arcs)
	}
	if _, ok := t1.Arcs[0].Map.(core.AllToOne); !ok {
		t.Fatalf("mapping = %T, want AllToOne", t1.Arcs[0].Map)
	}
	// The four chunk regions must partition vec's 80 bytes: contiguous,
	// disjoint, covering.
	var next int64
	for ctx := core.Context(0); ctx < 4; ctx++ {
		regs := t1.Access(ctx)
		if len(regs) != 1 || regs[0].Buffer != "vec" || !regs[0].Write {
			t.Fatalf("ctx %d regions = %+v", ctx, regs)
		}
		if regs[0].Offset != next {
			t.Fatalf("ctx %d starts at %d, want %d", ctx, regs[0].Offset, next)
		}
		if regs[0].Size%8 != 0 || regs[0].Size <= 0 {
			t.Fatalf("ctx %d size %d not a positive element multiple", ctx, regs[0].Size)
		}
		next = regs[0].Offset + regs[0].Size
	}
	if next != 80 {
		t.Fatalf("chunks cover [0,%d), want [0,80)", next)
	}
	// And the verifier agrees: no findings on the chunked program.
	rep, err := ddmlint.Lint(p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("chunked model not clean: %+v", rep.Findings)
	}
}

// TestChunkSilencesWriteConflict is the before/after pair: the same
// program with whole-buffer exports is flagged, with :chunk it is clean.
func TestChunkSilencesWriteConflict(t *testing.T) {
	build := func(export string) *core.Program {
		src := "//#pragma ddm startprogram\n" +
			"//#pragma ddm var vec f64 8\n" +
			"//#pragma ddm thread 1 instances(8) export(" + export + ")\n" +
			"_ = ctx\n//#pragma ddm endthread\n//#pragma ddm endprogram\n"
		f := mustParse(t, src)
		if err := Analyze(f); err != nil {
			t.Fatal(err)
		}
		p, _, err := BuildCore(f)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	rep, err := ddmlint.Lint(build("vec"))
	if err != nil {
		t.Fatal(err)
	}
	conflict := false
	for _, fd := range rep.Findings {
		if fd.Kind == ddmlint.KindWriteConflict {
			conflict = true
		}
	}
	if !conflict {
		t.Fatalf("whole-buffer export not flagged: %+v", rep.Findings)
	}
	rep, err = ddmlint.Lint(build("vec:chunk"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("chunked export still flagged: %+v", rep.Findings)
	}
}

func TestGeneratedChunkRegionHelper(t *testing.T) {
	src := "//#pragma ddm startprogram\n" +
		"//#pragma ddm var vec f64 8\n" +
		"//#pragma ddm thread 1 instances(4) import(vec:chunk) export(vec:chunk)\n" +
		"_ = ctx\n//#pragma ddm endthread\n//#pragma ddm endprogram\n"
	f := mustParse(t, src)
	if err := Analyze(f); err != nil {
		t.Fatal(err)
	}
	out, err := Generate(f, TargetSoft)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"func ddmChunkRegion(",
		`ddmChunkRegion("vec", 64, 8, 4, int(rctx), false)`,
		`ddmChunkRegion("vec", 64, 8, 4, int(rctx), true)`,
		"func(rctx tflux.Context) []tflux.MemRegion",
	} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Plain references must keep the context-free closure shape.
	plain := mustParse(t, "//#pragma ddm startprogram\n//#pragma ddm var vec f64 8\n"+
		"//#pragma ddm thread 1 import(vec)\n_ = vec\n//#pragma ddm endthread\n//#pragma ddm endprogram\n")
	if err := Analyze(plain); err != nil {
		t.Fatal(err)
	}
	out, err = Generate(plain, TargetSoft)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "ddmChunkRegion") {
		t.Fatalf("plain import needlessly emits chunk helper:\n%s", out)
	}
}
