package cellsim

import (
	"encoding/binary"
	"strings"
	"testing"

	"tflux/internal/core"
)

// stageSum builds a map+reduce over a real shared byte buffer: workers
// write their partial sums as little-endian uint64s, the reducer adds
// them. Every region is declared so the Cell substrate stages it.
func stageSum(workers core.Context, perWorker int) (*core.Program, *SharedVariableBuffer, *uint64) {
	parts := make([]byte, int(workers)*8)
	result := new(uint64)
	p := core.NewProgram("cellsum")
	p.AddBuffer("parts", int64(len(parts)))
	b := p.AddBlock()
	work := core.NewTemplate(1, "work", func(ctx core.Context) {
		var s uint64
		for i := 0; i < perWorker; i++ {
			s += uint64(ctx)
		}
		binary.LittleEndian.PutUint64(parts[int(ctx)*8:], s)
	})
	work.Instances = workers
	work.Access = func(ctx core.Context) []core.MemRegion {
		return []core.MemRegion{{Buffer: "parts", Offset: int64(ctx) * 8, Size: 8, Write: true}}
	}
	reduce := core.NewTemplate(2, "reduce", func(core.Context) {
		var s uint64
		for w := core.Context(0); w < workers; w++ {
			s += binary.LittleEndian.Uint64(parts[int(w)*8:])
		}
		*result = s
	})
	reduce.Access = func(core.Context) []core.MemRegion {
		return []core.MemRegion{{Buffer: "parts", Offset: 0, Size: int64(workers) * 8, Write: false}}
	}
	work.Then(2, core.AllToOne{})
	b.Add(work)
	b.Add(reduce)
	svb := NewSharedVariableBuffer()
	svb.Register("parts", parts)
	return p, svb, result
}

func TestCellRunFunctional(t *testing.T) {
	p, svb, result := stageSum(12, 1000)
	st, err := Run(p, svb, Config{SPEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for c := 0; c < 12; c++ {
		want += uint64(c) * 1000
	}
	if *result != want {
		t.Fatalf("sum = %d, want %d", *result, want)
	}
	if st.DMABytesIn == 0 || st.DMABytesOut == 0 {
		t.Fatalf("no DMA traffic recorded: %+v", st)
	}
	if st.TSU.Inlets != 1 || st.TSU.Outlets != 1 {
		t.Fatalf("inlets/outlets = %d/%d", st.TSU.Inlets, st.TSU.Outlets)
	}
	if st.LSHighWater != 12*8 { // the reducer's import
		t.Fatalf("LS high water = %d, want %d", st.LSHighWater, 12*8)
	}
	var exec int64
	for _, s := range st.SPEs {
		exec += s.Executed
	}
	if exec != 13 {
		t.Fatalf("executed = %d, want 13", exec)
	}
}

func TestCellLocalStoreCapacityEnforced(t *testing.T) {
	big := make([]byte, 512<<10)
	p := core.NewProgram("big")
	p.AddBuffer("big", int64(len(big)))
	b := p.AddBlock()
	tpl := core.NewTemplate(1, "huge", func(core.Context) {})
	tpl.Access = func(core.Context) []core.MemRegion {
		return []core.MemRegion{{Buffer: "big", Offset: 0, Size: int64(len(big)), Write: false}}
	}
	b.Add(tpl)
	svb := NewSharedVariableBuffer()
	svb.Register("big", big)
	_, err := Run(p, svb, Config{SPEs: 2})
	if err == nil || !strings.Contains(err.Error(), "Local Store") {
		t.Fatalf("err = %v, want Local Store capacity error", err)
	}
}

func TestCellUnregisteredBufferRejected(t *testing.T) {
	p, _, _ := stageSum(4, 10)
	_, err := Run(p, NewSharedVariableBuffer(), Config{SPEs: 2})
	if err == nil || !strings.Contains(err.Error(), "registered with") {
		t.Fatalf("err = %v, want registration error", err)
	}
}

func TestCellRegionBoundsChecked(t *testing.T) {
	p := core.NewProgram("oob")
	p.AddBuffer("x", 16)
	b := p.AddBlock()
	tpl := core.NewTemplate(1, "bad", func(core.Context) {})
	tpl.Access = func(core.Context) []core.MemRegion {
		return []core.MemRegion{{Buffer: "x", Offset: 8, Size: 64, Write: false}}
	}
	b.Add(tpl)
	svb := NewSharedVariableBuffer()
	svb.Register("x", make([]byte, 16))
	_, err := Run(p, svb, Config{SPEs: 1})
	if err == nil || !strings.Contains(err.Error(), "outside buffer") {
		t.Fatalf("err = %v, want bounds error", err)
	}
}

func TestCellBodyPanicSurfaces(t *testing.T) {
	p := core.NewProgram("boom")
	b := p.AddBlock()
	tpl := core.NewTemplate(1, "x", func(core.Context) { panic("cell bang") })
	tpl.Instances = 4
	b.Add(tpl)
	_, err := Run(p, NewSharedVariableBuffer(), Config{SPEs: 2})
	if err == nil || !strings.Contains(err.Error(), "cell bang") {
		t.Fatalf("err = %v", err)
	}
}

func TestCellTinyQueuesNoDeadlock(t *testing.T) {
	// Mailbox depth 1, command ring 1, many fine-grained DThreads across
	// few SPEs: exercises the non-blocking dispatch path hard.
	p, svb, result := stageSum(64, 10)
	_, err := Run(p, svb, Config{SPEs: 3, MailboxCap: 1, CommandBufCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for c := 0; c < 64; c++ {
		want += uint64(c) * 10
	}
	if *result != want {
		t.Fatalf("sum = %d, want %d", *result, want)
	}
}

func TestCellDMAChunking(t *testing.T) {
	// A 40 KB import at 16 KB DMA chunks needs 3 transfers.
	data := make([]byte, 40<<10)
	p := core.NewProgram("chunks")
	p.AddBuffer("d", int64(len(data)))
	b := p.AddBlock()
	tpl := core.NewTemplate(1, "r", func(core.Context) {})
	tpl.Access = func(core.Context) []core.MemRegion {
		return []core.MemRegion{{Buffer: "d", Offset: 0, Size: int64(len(data)), Write: false}}
	}
	b.Add(tpl)
	svb := NewSharedVariableBuffer()
	svb.Register("d", data)
	st, err := Run(p, svb, Config{SPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.DMATransfers != 3 {
		t.Fatalf("transfers = %d, want 3", st.DMATransfers)
	}
	if st.DMABytesIn != int64(len(data)) {
		t.Fatalf("bytes in = %d, want %d", st.DMABytesIn, len(data))
	}
}

func TestCellMultiBlock(t *testing.T) {
	x := make([]byte, 8)
	p := core.NewProgram("mb")
	p.AddBuffer("x", 8)
	b0 := p.AddBlock()
	t0 := core.NewTemplate(1, "w", func(core.Context) { binary.LittleEndian.PutUint64(x, 21) })
	t0.Access = func(core.Context) []core.MemRegion {
		return []core.MemRegion{{Buffer: "x", Size: 8, Write: true}}
	}
	b0.Add(t0)
	b1 := p.AddBlock()
	t1 := core.NewTemplate(2, "m", func(core.Context) {
		binary.LittleEndian.PutUint64(x, binary.LittleEndian.Uint64(x)*2)
	})
	t1.Access = func(core.Context) []core.MemRegion {
		return []core.MemRegion{{Buffer: "x", Size: 8, Write: false}, {Buffer: "x", Size: 8, Write: true}}
	}
	b1.Add(t1)
	svb := NewSharedVariableBuffer()
	svb.Register("x", x)
	if _, err := Run(p, svb, Config{SPEs: 3}); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(x); got != 42 {
		t.Fatalf("x = %d, want 42", got)
	}
}

func TestCellStreamedRegionBypassesCapacity(t *testing.T) {
	// A 1 MB streamed import must run on a 256 KB Local Store, staged
	// through the double-buffered DMA window.
	big := make([]byte, 1<<20)
	p := core.NewProgram("stream")
	p.AddBuffer("big", int64(len(big)))
	b := p.AddBlock()
	tpl := core.NewTemplate(1, "streamer", func(core.Context) {})
	tpl.Access = func(core.Context) []core.MemRegion {
		return []core.MemRegion{{Buffer: "big", Offset: 0, Size: int64(len(big)), Stream: true}}
	}
	b.Add(tpl)
	svb := NewSharedVariableBuffer()
	svb.Register("big", big)
	st, err := Run(p, svb, Config{SPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.DMABytesIn != 1<<20 {
		t.Fatalf("bytes in = %d, want 1 MiB", st.DMABytesIn)
	}
	if st.DMATransfers != 64 { // 1 MiB / 16 KiB
		t.Fatalf("transfers = %d, want 64", st.DMATransfers)
	}
	// Footprint is the 2x16 KiB stream window, not the 1 MiB region.
	if st.LSHighWater != 32<<10 {
		t.Fatalf("high water = %d, want 32 KiB", st.LSHighWater)
	}
}

func TestCellReserveConfig(t *testing.T) {
	// With a huge reserve, even a small resident footprint must fail.
	data := make([]byte, 64<<10)
	p := core.NewProgram("reserve")
	p.AddBuffer("d", int64(len(data)))
	b := p.AddBlock()
	tpl := core.NewTemplate(1, "r", func(core.Context) {})
	tpl.Access = func(core.Context) []core.MemRegion {
		return []core.MemRegion{{Buffer: "d", Size: int64(len(data))}}
	}
	b.Add(tpl)
	svb := NewSharedVariableBuffer()
	svb.Register("d", data)
	_, err := Run(p, svb, Config{SPEs: 1, Reserve: 224 << 10})
	if err == nil || !strings.Contains(err.Error(), "Local Store") {
		t.Fatalf("err = %v", err)
	}
	// With the default reserve it fits.
	if _, err := Run(p, svb, Config{SPEs: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestCellDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.SPEs != 6 || c.LocalStore != 256<<10 || c.MailboxCap != 4 || c.CommandBufCap != 16 || c.DMAChunk != 16<<10 {
		t.Fatalf("defaults = %+v", c)
	}
	tiny := Config{LocalStore: 8 << 10}.withDefaults()
	if 2*tiny.DMAChunk > tiny.LocalStore {
		t.Fatalf("DMA chunk not clamped: %+v", tiny)
	}
}
