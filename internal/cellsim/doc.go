// Package cellsim models TFluxCell: the TFlux implementation for the
// Cell/BE heterogeneous multicore (paper §4.3), where DThreads run on the
// SPE co-processors and the TSU is a software module on the PPE.
//
// The substrate reproduces the Cell-specific mechanisms on commodity
// hardware (our replacement for the paper's PlayStation 3):
//
//   - Each compute node is an "SPE" goroutine with a private, capacity-
//     limited Local Store arena (256 KB minus a code/stack reserve, like
//     the real SPU). A DThread may only execute if its declared imports
//     and exports fit in the Local Store — the exact constraint that caps
//     QSORT's problem sizes in §6.3.
//
//   - Shared data moves through explicit DMA: before a DThread runs, its
//     import regions are staged from main memory (the
//     SharedVariableBuffer registry of Go slices) into the Local Store
//     arena in bounded-size DMA transfers; after it runs, its export
//     regions are staged back. The staging copies are traffic-equivalent:
//     bodies compute on the canonical shared slices (so results are
//     exact), while the arena copies pay the memory-bandwidth cost a real
//     SPE pays, in both directions. Transfers are chunked at the Cell's
//     16 KB DMA limit.
//
//   - A Kernel tells its TSU about events by placing commands into its
//     CommandBuffer (a small ring, sized like the paper's 128-byte
//     buffer); the PPE-side TSU emulator loops over all CommandBuffers,
//     updates the TSU state, and notifies SPEs of newly ready DThreads
//     through bounded mailboxes (depth 4, like the SPU inbound mailbox).
//
// Timing is wall-clock: like the paper's native PS3 runs, speedups come
// from real elapsed time, and the staging/mailbox overheads are real work.
package cellsim
