package cellsim

import (
	"fmt"
	"sync"
	"time"

	"tflux/internal/core"
	"tflux/internal/obs"
	"tflux/internal/tsu"
)

// Config describes the simulated Cell system.
type Config struct {
	// SPEs is the number of compute nodes. Zero selects 6, the number of
	// SPEs available to the programmer on a PlayStation 3.
	SPEs int
	// LocalStore is the per-SPE Local Store capacity in bytes (default
	// 256 KB, as on the real SPU).
	LocalStore int64
	// Reserve is Local Store space unavailable for data (code, stack,
	// runtime); default 32 KB.
	Reserve int64
	// MailboxCap is the SPE inbound mailbox depth (default 4).
	MailboxCap int
	// CommandBufCap is the CommandBuffer ring capacity (default 16
	// commands, the paper's 128-byte buffer at 8 bytes per command).
	CommandBufCap int
	// DMAChunk is the maximum bytes per DMA transfer (default 16 KB, the
	// Cell's DMA limit).
	DMAChunk int64
	// TSUSize caps the DThread instances per DDM Block (the TSU's slot
	// count, §2). Zero means unlimited.
	TSUSize int64
	// Mapping overrides the context→SPE assignment policy (the TKT
	// contents). Nil keeps the paper's chunked range split — the default
	// the cycle-accounted runs are calibrated against.
	Mapping tsu.Mapping
	// Obs, when non-nil, receives typed events: ThreadComplete per SPE
	// lane, DMATransfer per staging operation, and TSUCommand on the PPE
	// lane (lane == SPEs).
	Obs obs.Sink
	// Metrics, when non-nil, receives the DMA latency histogram plus
	// end-of-run DMA, command, and TSU totals.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.SPEs <= 0 {
		c.SPEs = 6
	}
	if c.LocalStore <= 0 {
		c.LocalStore = 256 << 10
	}
	if c.Reserve <= 0 {
		c.Reserve = 32 << 10
	}
	if c.MailboxCap <= 0 {
		c.MailboxCap = 4
	}
	if c.CommandBufCap <= 0 {
		c.CommandBufCap = 16
	}
	if c.DMAChunk <= 0 {
		c.DMAChunk = 16 << 10
	}
	if 2*c.DMAChunk > c.LocalStore {
		c.DMAChunk = c.LocalStore / 2
	}
	return c
}

// SPEStats reports one SPE's activity.
type SPEStats struct {
	Executed int64 // application DThreads run
	DMABytes int64 // bytes staged in and out
}

// Stats is the outcome of a TFluxCell run.
type Stats struct {
	Elapsed      time.Duration
	TSU          tsu.Stats
	DMABytesIn   int64
	DMABytesOut  int64
	DMATransfers int64
	Commands     int64
	LSHighWater  int64 // largest per-DThread Local Store footprint seen
	SPEs         []SPEStats
}

// Run executes the program on the Cell substrate: DThread bodies on SPE
// goroutines with Local Store staging, the TSU emulator on the PPE
// goroutine. Every buffer the program declares must be registered in svb
// with at least the declared size.
func Run(p *core.Program, svb *SharedVariableBuffer, cfg Config) (*Stats, error) {
	cfg = cfg.withDefaults()
	state, err := tsu.NewStateCfg(p, cfg.SPEs, tsu.Config{MaxBlockInstances: cfg.TSUSize, Mapping: cfg.Mapping})
	if err != nil {
		return nil, err
	}
	for _, b := range p.Buffers {
		got := svb.Bytes(b.Name)
		if int64(len(got)) < b.Size {
			return nil, fmt.Errorf("cellsim: buffer %q registered with %d bytes, program declares %d", b.Name, len(got), b.Size)
		}
	}
	r := &cellRunner{
		cfg:    cfg,
		state:  state,
		svb:    svb,
		rings:  make([]*commandBuffer, cfg.SPEs),
		boxes:  make([]chan core.Instance, cfg.SPEs),
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	stats := &Stats{SPEs: make([]SPEStats, cfg.SPEs)}
	if cfg.Obs != nil {
		cfg.Obs.Begin()
		r.sink = cfg.Obs
	}
	dmaHist := cfg.Metrics.Histogram("cell.dma_ns", obs.LatencyBuckets)
	r.dmas = make([]dma, cfg.SPEs)
	r.highWater = make([]int64, cfg.SPEs)
	for i := 0; i < cfg.SPEs; i++ {
		r.rings[i] = newCommandBuffer(cfg.CommandBufCap)
		r.boxes[i] = make(chan core.Instance, cfg.MailboxCap)
		r.dmas[i].chunk = cfg.DMAChunk
		r.dmas[i].sink = cfg.Obs
		r.dmas[i].lane = i
		r.dmas[i].hist = dmaHist
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.SPEs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.spe(i, &stats.SPEs[i])
		}(i)
	}
	ppeErr := r.ppe()
	wg.Wait()
	stats.Elapsed = time.Since(start)
	stats.TSU = state.Stats()
	stats.Commands = r.commands
	var hw int64
	for i := range r.dmas {
		stats.DMABytesIn += r.dmas[i].bytesIn
		stats.DMABytesOut += r.dmas[i].bytesOut
		stats.DMATransfers += r.dmas[i].transfers
		stats.SPEs[i].DMABytes = r.dmas[i].bytesIn + r.dmas[i].bytesOut
		if r.highWater[i] > hw {
			hw = r.highWater[i]
		}
	}
	stats.LSHighWater = hw
	if cfg.Metrics != nil {
		reg := cfg.Metrics
		reg.Counter("cell.dma_bytes_in").Set(stats.DMABytesIn)
		reg.Counter("cell.dma_bytes_out").Set(stats.DMABytesOut)
		reg.Counter("cell.dma_transfers").Set(stats.DMATransfers)
		reg.Counter("cell.commands").Set(stats.Commands)
		reg.Counter("cell.ls_high_water").Set(stats.LSHighWater)
		reg.Counter("tsu.decrements").Set(stats.TSU.Decrements)
		reg.Counter("tsu.fired").Set(stats.TSU.Fired)
	}
	r.errMu.Lock()
	err = r.err
	r.errMu.Unlock()
	if err == nil {
		err = ppeErr
	}
	return stats, err
}

type cellRunner struct {
	cfg   Config
	state *tsu.State
	svb   *SharedVariableBuffer

	rings  []*commandBuffer
	boxes  []chan core.Instance
	notify chan struct{}

	dmas      []dma
	highWater []int64
	commands  int64
	sink      obs.Sink // nil when observability is disabled

	stop     chan struct{}
	stopOnce sync.Once
	errMu    sync.Mutex
	err      error
}

func (r *cellRunner) fail(err error) {
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
	r.shutdown()
}

// shutdown releases every blocked party: SPEs waiting on mailboxes or
// pushing commands, and the PPE waiting for activity. Mailbox channels are
// never closed (the PPE may be mid-send); SPEs exit through the stop
// channel instead.
func (r *cellRunner) shutdown() {
	r.stopOnce.Do(func() {
		close(r.stop)
		for _, cb := range r.rings {
			cb.close()
		}
	})
}

func (r *cellRunner) signal() {
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

// spe is one Synergistic Processor Element: wait on the mailbox for the
// next DThread, stage its imports into the Local Store, run it, stage its
// exports back, and notify the TSU through the CommandBuffer.
func (r *cellRunner) spe(id int, st *SPEStats) {
	arena := make([]byte, r.cfg.LocalStore)
	for {
		select {
		case inst := <-r.boxes[id]:
			if !r.runOne(id, inst, arena, st) {
				return
			}
		case <-r.stop:
			return
		}
	}
}

// runOne executes a single DThread on SPE id. It returns false on abort.
func (r *cellRunner) runOne(id int, inst core.Instance, arena []byte, st *SPEStats) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			r.fail(fmt.Errorf("cellsim: DThread %v panicked on SPE %d: %v", inst, id, p))
			ok = false
		}
	}()
	var imports, exports []core.MemRegion
	if !r.state.IsService(inst) {
		tpl := r.state.Template(inst.Thread)
		if tpl.Access != nil {
			for _, reg := range tpl.Access(inst.Ctx) {
				if reg.Size <= 0 {
					continue
				}
				if reg.Write {
					exports = append(exports, reg)
				} else {
					imports = append(imports, reg)
				}
			}
		}
		// Resident regions occupy the Local Store for the whole DThread;
		// streamed regions are double-buffered through a fixed window, so
		// they cost only their largest DMA piece (two buffers' worth).
		var footprint, streamWindow int64
		for _, reg := range append(append([]core.MemRegion(nil), imports...), exports...) {
			if reg.Stream {
				piece := reg.Size
				if piece > r.cfg.DMAChunk {
					piece = r.cfg.DMAChunk
				}
				if 2*piece > streamWindow {
					streamWindow = 2 * piece
				}
				continue
			}
			footprint += reg.Size
		}
		footprint += streamWindow
		if footprint > r.cfg.LocalStore-r.cfg.Reserve {
			r.fail(fmt.Errorf("cellsim: DThread %v needs %d bytes of Local Store, only %d available (problem size does not fit the SPE Local Store; restructure as the paper's §6.3 notes)",
				inst, footprint, r.cfg.LocalStore-r.cfg.Reserve))
			return false
		}
		if footprint > r.highWater[id] {
			r.highWater[id] = footprint
		}
		// The streaming window sits at the top of the arena; resident
		// regions fill from the bottom.
		streamWin := arena[int64(len(arena))-2*r.cfg.DMAChunk:]
		// DMA-in the imports.
		var used int64
		for _, reg := range imports {
			src, err := r.svb.slice(reg)
			if err != nil {
				r.fail(err)
				return false
			}
			if reg.Stream {
				r.dmas[id].stage(streamWin, src, false, true)
			} else {
				used += r.dmas[id].stage(arena[used:], src, false, false)
			}
		}
		if r.sink != nil {
			t0 := r.sink.Now()
			start := time.Now()
			tpl.Body(inst.Ctx)
			r.sink.Record(obs.Event{
				Kind:  obs.ThreadComplete,
				Lane:  id,
				Inst:  inst,
				Start: t0,
				Dur:   time.Since(start),
			})
		} else {
			tpl.Body(inst.Ctx)
		}
		st.Executed++
		// DMA-out the exports (traffic-equivalent staging; see package
		// doc).
		used = 0
		for _, reg := range exports {
			src, err := r.svb.slice(reg)
			if err != nil {
				r.fail(err)
				return false
			}
			if reg.Stream {
				r.dmas[id].stage(streamWin, src, true, true)
			} else {
				used += r.dmas[id].stage(arena[used:], src, true, false)
			}
		}
	}
	r.rings[id].push(command{inst: inst})
	r.signal()
	return true
}

// ppe is the PPE-side TSU Emulator: loop over all CommandBuffers, apply
// completions to the TSU state, and mail newly ready DThreads to their
// owning SPEs.
func (r *cellRunner) ppe() error {
	// pending holds ready DThreads whose SPE mailbox was full. Mailbox
	// sends are never blocking: a full mailbox plus a full CommandBuffer
	// would otherwise deadlock the PPE against the SPE. Every mailbox
	// consumption ends in a command push (which signals), so pending work
	// is always retried.
	pending := make([][]core.Instance, r.cfg.SPEs)
	flush := func() {
		for i := range pending {
		sendLoop:
			for len(pending[i]) > 0 {
				select {
				case r.boxes[i] <- pending[i][0]:
					pending[i] = pending[i][1:]
				default:
					break sendLoop
				}
			}
		}
	}

	first := r.state.Start()
	pending[int(first.Kernel)] = append(pending[int(first.Kernel)], first.Inst)
	flush()

	var cmds []command
	var ready []tsu.Ready // reusable CompleteInto batch buffer
	for {
		cmds = cmds[:0]
		for _, cb := range r.rings {
			cmds = cb.drain(cmds)
		}
		if len(cmds) == 0 {
			flush()
			select {
			case <-r.notify:
				continue
			case <-r.stop:
				return nil
			}
		}
		for _, c := range cmds {
			r.commands++
			var t0 time.Duration
			if r.sink != nil {
				t0 = r.sink.Now()
			}
			var programDone bool
			ready, _, programDone = r.state.CompleteInto(ready[:0], c.inst, r.state.KernelOf(c.inst))
			if r.sink != nil {
				r.sink.Record(obs.Event{
					Kind:  obs.TSUCommand,
					Lane:  r.cfg.SPEs,
					Inst:  c.inst,
					Start: t0,
					Dur:   r.sink.Now() - t0,
				})
			}
			for _, rd := range ready {
				pending[int(rd.Kernel)] = append(pending[int(rd.Kernel)], rd.Inst)
			}
			if programDone {
				r.shutdown()
				return nil
			}
		}
		flush()
	}
}
