package cellsim

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tflux/internal/core"
	"tflux/internal/obs"
)

// SharedVariableBuffer is the main-memory area through which DThreads
// exchange shared variable values (paper §4.3): a registry of the named
// byte buffers backing the program's core.Buffer declarations.
type SharedVariableBuffer struct {
	bufs map[string][]byte
}

// NewSharedVariableBuffer returns an empty registry.
func NewSharedVariableBuffer() *SharedVariableBuffer {
	return &SharedVariableBuffer{bufs: make(map[string][]byte)}
}

// Register binds a named buffer to its backing bytes. Re-registering a
// name replaces the binding.
func (s *SharedVariableBuffer) Register(name string, data []byte) {
	s.bufs[name] = data
}

// Bytes returns the backing slice for name, or nil.
func (s *SharedVariableBuffer) Bytes(name string) []byte { return s.bufs[name] }

// Names returns the registered buffer names in sorted order — the
// enumeration worker-side replica recycling snapshots and restores.
func (s *SharedVariableBuffer) Names() []string {
	out := make([]string, 0, len(s.bufs))
	for name := range s.bufs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// slice resolves a region to its backing bytes, bounds-checked.
func (s *SharedVariableBuffer) slice(r core.MemRegion) ([]byte, error) {
	b, ok := s.bufs[r.Buffer]
	if !ok {
		return nil, fmt.Errorf("cellsim: region references unregistered buffer %q", r.Buffer)
	}
	if r.Offset < 0 || r.Size < 0 || r.Offset+r.Size > int64(len(b)) {
		return nil, fmt.Errorf("cellsim: region [%d,%d) outside buffer %q (%d bytes)", r.Offset, r.Offset+r.Size, r.Buffer, len(b))
	}
	return b[r.Offset : r.Offset+r.Size], nil
}

// command is one entry a Kernel places into its CommandBuffer: a DThread
// completion notification.
type command struct {
	inst core.Instance
}

// commandBuffer is the per-SPE command ring the PPE polls. Its bounded
// capacity mirrors the paper's 128-byte main-memory buffer.
type commandBuffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []command
	cap    int
	closed bool
}

func newCommandBuffer(capacity int) *commandBuffer {
	cb := &commandBuffer{buf: make([]command, 0, capacity), cap: capacity}
	cb.cond = sync.NewCond(&cb.mu)
	return cb
}

// push blocks while the ring is full (the SPE stalls on its DMA of the
// command, as on real hardware). On a closed buffer the command is
// dropped: the run is aborting.
func (cb *commandBuffer) push(c command) {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	for len(cb.buf) >= cb.cap && !cb.closed {
		cb.cond.Wait()
	}
	if cb.closed {
		return
	}
	cb.buf = append(cb.buf, c)
}

// drain moves all pending commands into dst.
func (cb *commandBuffer) drain(dst []command) []command {
	cb.mu.Lock()
	defer cb.mu.Unlock()
	if len(cb.buf) > 0 {
		dst = append(dst, cb.buf...)
		cb.buf = cb.buf[:0]
		cb.cond.Broadcast()
	}
	return dst
}

func (cb *commandBuffer) close() {
	cb.mu.Lock()
	cb.closed = true
	cb.mu.Unlock()
	cb.cond.Broadcast()
}

// dma models one staging engine: chunked copies between main memory and a
// Local Store arena, with traffic accounting.
type dma struct {
	chunk     int64
	bytesIn   int64
	bytesOut  int64
	transfers int64

	// Observability; nil when disabled.
	sink obs.Sink
	lane int
	hist *obs.Histogram
}

// stage copies src into the given Local Store window (import) or walks src
// through it to pay the write-out traffic (export), in chunk-sized
// transfers. Resident regions land sequentially in the window; streamed
// regions reuse its start for every chunk (double-buffering). It returns
// the window bytes consumed (the largest chunk for streamed regions).
func (d *dma) stage(window []byte, src []byte, out, stream bool) int64 {
	var moved, used int64
	var t0 time.Duration
	var start time.Time
	if d.sink != nil || d.hist != nil {
		if d.sink != nil {
			t0 = d.sink.Now()
		}
		start = time.Now()
	}
	for len(src) > 0 {
		n := d.chunk
		if n > int64(len(src)) {
			n = int64(len(src))
		}
		if stream {
			copy(window, src[:n])
			if n > used {
				used = n
			}
		} else {
			copy(window[moved:], src[:n])
			used = moved + n
		}
		src = src[n:]
		moved += n
		d.transfers++
	}
	if out {
		d.bytesOut += moved
	} else {
		d.bytesIn += moved
	}
	if d.sink != nil || d.hist != nil {
		dur := time.Since(start)
		if d.sink != nil {
			note := "in"
			if out {
				note = "out"
			}
			d.sink.Record(obs.Event{
				Kind:  obs.DMATransfer,
				Lane:  d.lane,
				Start: t0,
				Dur:   dur,
				Bytes: moved,
				Note:  note,
			})
		}
		if d.hist != nil {
			d.hist.ObserveDuration(dur)
		}
	}
	return used
}
