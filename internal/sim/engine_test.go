package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestEngineSameCycleFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events out of FIFO order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var e Engine
	var fired []Time
	e.At(1, func() {
		fired = append(fired, e.Now())
		e.After(4, func() { fired = append(fired, e.Now()) })
	})
	e.Run(0)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 5 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	var e Engine
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(0)
}

func TestEngineMaxEvents(t *testing.T) {
	var e Engine
	var reschedule func()
	n := 0
	reschedule = func() {
		n++
		e.After(1, reschedule)
	}
	e.At(0, reschedule)
	processed := e.Run(100)
	if processed != 100 {
		t.Fatalf("processed = %d, want 100", processed)
	}
	if e.Pending() == 0 {
		t.Fatal("runaway loop drained unexpectedly")
	}
}

func TestResourceSerialization(t *testing.T) {
	var r Resource
	if done := r.Acquire(10, 5); done != 15 {
		t.Fatalf("first acquire done = %d, want 15", done)
	}
	// Arrives while busy: queues behind.
	if done := r.Acquire(12, 5); done != 20 {
		t.Fatalf("second acquire done = %d, want 20", done)
	}
	// Arrives after idle: starts immediately.
	if done := r.Acquire(100, 5); done != 105 {
		t.Fatalf("third acquire done = %d, want 105", done)
	}
	if r.Busy != 15 {
		t.Fatalf("busy = %d, want 15", r.Busy)
	}
}

// TestResourceMonotoneProperty: completion times are non-decreasing in
// arrival order and never overlap.
func TestResourceMonotoneProperty(t *testing.T) {
	f := func(arrivals []uint16, durs []uint8) bool {
		var r Resource
		at := Time(0)
		prevDone := Time(0)
		for i, a := range arrivals {
			at += Time(a % 100)
			d := Time(1)
			if i < len(durs) {
				d += Time(durs[i] % 20)
			}
			done := r.Acquire(at, d)
			if done < at+d || done < prevDone+d {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
