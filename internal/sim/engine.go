// Package sim is a small deterministic discrete-event simulation engine.
//
// It is the substrate under the TFluxHard full-system model (our
// replacement for the Simics simulator the paper evaluates on): simulated
// cores, the memory-mapped TSU device and the interconnect are all actors
// scheduling callbacks at absolute cycle times. The engine is
// single-threaded; two events at the same cycle fire in scheduling order,
// so a given program and configuration always produce the same cycle
// counts.
package sim

import "container/heap"

// Time is simulated time in CPU cycles.
type Time int64

// Engine is a deterministic event queue. The zero value is ready to use.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
}

type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among same-cycle events
	do  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules do to run at absolute time t. Scheduling in the past (t <
// Now) is a simulation bug and panics.
func (e *Engine) At(t Time, do func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, do: do})
}

// After schedules do to run d cycles from now.
func (e *Engine) After(d Time, do func()) { e.At(e.now+d, do) }

// Step runs the earliest pending event and returns false when the queue is
// empty.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	ev.do()
	return true
}

// Run drains the event queue. maxEvents bounds runaway simulations
// (<= 0 means no bound); it returns the number of events processed.
func (e *Engine) Run(maxEvents int64) int64 {
	var n int64
	for e.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.events.Len() }

// Resource models a unit that serves one request at a time (the TSU
// device's command pipeline, a bus): requests arriving while it is busy
// queue behind it in arrival order.
type Resource struct {
	busyUntil Time
	// Busy accumulates total occupied cycles, for utilization stats.
	Busy Time
}

// Acquire reserves the resource for dur cycles starting no earlier than
// `at`, returning the time the request completes.
func (r *Resource) Acquire(at, dur Time) (done Time) {
	start := at
	if r.busyUntil > start {
		start = r.busyUntil
	}
	r.busyUntil = start + dur
	r.Busy += dur
	return r.busyUntil
}

// FreeAt returns the time the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.busyUntil }
