package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (also read by Perfetto). Field order is fixed by the struct so the
// export is byte-stable for golden tests.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// chromeName labels one event for the trace viewer.
func chromeName(e Event) string {
	switch e.Kind {
	case ThreadComplete, ThreadDispatch:
		if e.Note != "" {
			return e.Note
		}
		return e.Inst.String()
	case DMATransfer:
		return "dma " + e.Note
	default:
		if e.Note != "" {
			return e.Kind.String() + " " + e.Note
		}
		return e.Kind.String()
	}
}

// WriteChromeTrace exports events as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Each execution lane
// becomes one named track (tid); events with a duration are rendered as
// complete ("X") slices, instantaneous ones as instant ("i") marks.
// Events are exported in SortEvents order, so the output is
// deterministic for a given event set.
func WriteChromeTrace(w io.Writer, events []Event) error {
	events = append([]Event(nil), events...)
	SortEvents(events)

	lanes := map[int]bool{}
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	for _, e := range events {
		lanes[e.Lane] = true
		ce := chromeEvent{
			Name: chromeName(e),
			Cat:  e.Kind.String(),
			TS:   usec(e.Start),
			PID:  0,
			TID:  e.Lane,
		}
		args := map[string]any{}
		if e.Kind == ThreadComplete || e.Kind == ThreadDispatch {
			args["instance"] = e.Inst.String()
			if e.Service {
				args["service"] = true
			}
		}
		if e.Bytes != 0 {
			args["bytes"] = e.Bytes
		}
		if len(args) > 0 {
			ce.Args = args
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = usec(e.Dur)
		} else {
			ce.Ph = "i"
			ce.Args = mergeScope(ce.Args)
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	// Name each lane so the viewer shows "lane 0", "lane 1", ... instead
	// of bare thread ids. Metadata events go first, in lane order.
	var meta []chromeEvent
	for lane := range lanes {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: lane,
			Args: map[string]any{"name": fmt.Sprintf("lane %d", lane)},
		})
	}
	sortMeta(meta)
	out.TraceEvents = append(meta, out.TraceEvents...)

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// mergeScope tags instant events with thread scope (required by some
// viewers to render the mark).
func mergeScope(args map[string]any) map[string]any {
	if args == nil {
		args = map[string]any{}
	}
	args["s"] = "t"
	return args
}

func sortMeta(meta []chromeEvent) {
	for i := 1; i < len(meta); i++ {
		for j := i; j > 0 && meta[j].TID < meta[j-1].TID; j-- {
			meta[j], meta[j-1] = meta[j-1], meta[j]
		}
	}
}

// Utilization returns, per lane in [0, lanes), the fraction of the
// event span covered by ThreadComplete durations — the load-balance
// number the paper's per-kernel analysis rests on.
func Utilization(events []Event, lanes int) []float64 {
	out := make([]float64, lanes)
	var span time.Duration
	busy := make([]time.Duration, lanes)
	for _, e := range events {
		if e.End() > span {
			span = e.End()
		}
		if e.Kind == ThreadComplete && e.Lane >= 0 && e.Lane < lanes {
			busy[e.Lane] += e.Dur
		}
	}
	if span == 0 {
		return out
	}
	for i := range out {
		out[i] = float64(busy[i]) / float64(span)
	}
	return out
}

// WriteSummary renders a human-readable run summary from an event set:
// per-lane utilization and thread counts, then per-kind event totals
// with byte traffic where applicable. lanes is the number of compute
// lanes (kernels/SPEs/cores); events on higher lanes (the TSU /
// coordinator lane) are summarized under "tsu".
func WriteSummary(w io.Writer, events []Event, lanes int) error {
	util := Utilization(events, lanes)
	type laneAgg struct {
		threads, service int64
		busy             time.Duration
	}
	perLane := make([]laneAgg, lanes)
	var kindCount [numKinds]int64
	var kindBytes [numKinds]int64
	var kindDur [numKinds]time.Duration
	for _, e := range events {
		kindCount[e.Kind]++
		kindBytes[e.Kind] += e.Bytes
		kindDur[e.Kind] += e.Dur
		if e.Kind == ThreadComplete && e.Lane >= 0 && e.Lane < lanes {
			if e.Service {
				perLane[e.Lane].service++
			} else {
				perLane[e.Lane].threads++
			}
			perLane[e.Lane].busy += e.Dur
		}
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "lane\tthreads\tservice\tbusy\tutilization")
	for i := range perLane {
		fmt.Fprintf(tw, "k%d\t%d\t%d\t%s\t%.1f%%\n",
			i, perLane[i].threads, perLane[i].service, perLane[i].busy, 100*util[i])
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "event\tcount\ttotal\tbytes")
	for k := Kind(0); k < numKinds; k++ {
		if kindCount[k] == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\n", k, kindCount[k], kindDur[k], kindBytes[k])
	}
	return tw.Flush()
}

// WriteEventCSV exports events as CSV in SortEvents order:
// kind,lane,instance,start_ns,dur_ns,service,bytes,note.
func WriteEventCSV(w io.Writer, events []Event) error {
	events = append([]Event(nil), events...)
	SortEvents(events)
	if _, err := fmt.Fprintln(w, "kind,lane,instance,start_ns,dur_ns,service,bytes,note"); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%s,%d,%s,%d,%d,%t,%d,%s\n",
			e.Kind, e.Lane, e.Inst, e.Start.Nanoseconds(), e.Dur.Nanoseconds(),
			e.Service, e.Bytes, e.Note); err != nil {
			return err
		}
	}
	return nil
}
