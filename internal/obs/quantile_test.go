package obs

import (
	"strings"
	"testing"
)

// TestQuantileKnownDistribution checks the interpolation arithmetic on a
// hand-computable histogram: bounds 10/20/30, five samples in the first
// bucket and five in the second.
func TestQuantileKnownDistribution(t *testing.T) {
	h := newHistogram([]int64{10, 20, 30})
	for i := 0; i < 5; i++ {
		h.Observe(5)  // bucket (0,10]
		h.Observe(15) // bucket (10,20]
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.25, 5},   // rank 2.5 of 5 in (0,10] → 0 + 0.5·10
		{0.50, 10},  // rank 5 exhausts the first bucket → its upper bound
		{0.75, 15},  // rank 2.5 of 5 in (10,20] → 10 + 0.5·10
		{1.00, 20},  // rank 10 exhausts the second bucket
		{-0.5, 0},   // clamped to q=0
		{1.50, 20},  // clamped to q=1
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

// TestQuantileUniform checks that on uniform data the estimate lands
// near the true quantile (within one bucket of interpolation error).
func TestQuantileUniform(t *testing.T) {
	bounds := make([]int64, 10)
	for i := range bounds {
		bounds[i] = int64((i + 1) * 100)
	}
	h := newHistogram(bounds)
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	for _, q := range []float64{0.10, 0.50, 0.90, 0.95, 0.99} {
		got := h.Quantile(q)
		want := int64(q * 1000)
		if got < want-50 || got > want+50 {
			t.Errorf("Quantile(%v) = %d, want %d ± 50", q, got, want)
		}
	}
	// Monotone in q.
	if !(h.Quantile(0.5) <= h.Quantile(0.95) && h.Quantile(0.95) <= h.Quantile(0.99)) {
		t.Errorf("quantiles not monotone: p50=%d p95=%d p99=%d",
			h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99))
	}
}

func TestQuantileEdges(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram should report 0")
	}
	h := newHistogram([]int64{10})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report 0")
	}
	// Everything in the overflow bucket: report its lower edge (the
	// largest configured bound), not a fabricated interpolation.
	for i := 0; i < 4; i++ {
		h.Observe(1000)
	}
	if got := h.Quantile(0.99); got != 10 {
		t.Errorf("overflow quantile = %d, want 10", got)
	}
}

// TestSummaryQuantiles pins the p50/p95/p99 line in the registry summary
// exporter.
func TestSummaryQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{10, 20, 30})
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	var sb strings.Builder
	if err := r.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"p50=", "p95=", "p99="} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
