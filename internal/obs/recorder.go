package obs

import (
	"sort"
	"sync"
	"time"
)

// recorderShards is the number of independently locked event buckets.
// Power of two; indexed by lane, so each kernel goroutine almost always
// lands on its own shard and Record never contends in steady state.
const recorderShards = 16

type recorderShard struct {
	mu     sync.Mutex
	events []Event
	_      [32]byte // pad to a cache line to curb false sharing
}

// Recorder is the lock-sharded in-memory Sink: events accumulate in
// per-lane shards during the run and are merged into one deterministic
// order on read. A Recorder may be reused across runs (Begin resets it)
// but must not be shared between concurrent runs.
type Recorder struct {
	shards [recorderShards]recorderShard

	mu    sync.Mutex
	start time.Time
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Begin implements Sink: it drops prior events and marks the time origin.
func (r *Recorder) Begin() {
	r.mu.Lock()
	r.start = time.Now()
	r.mu.Unlock()
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		s.events = s.events[:0]
		s.mu.Unlock()
	}
}

// Now implements Sink: elapsed time since Begin.
func (r *Recorder) Now() time.Duration {
	r.mu.Lock()
	start := r.start
	r.mu.Unlock()
	if start.IsZero() {
		return 0
	}
	return time.Since(start)
}

// Record implements Sink.
func (r *Recorder) Record(e Event) {
	s := &r.shards[uint(e.Lane)%recorderShards]
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events merges all shards and returns the events in the deterministic
// export order: by start time, then lane, then instance, then kind. The
// stable tie-break makes golden trace exports and trace-based tests
// reproducible even when distinct events share a timestamp.
func (r *Recorder) Events() []Event {
	var out []Event
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		out = append(out, s.events...)
		s.mu.Unlock()
	}
	SortEvents(out)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += len(s.events)
		s.mu.Unlock()
	}
	return n
}

// SortEvents sorts events into the deterministic export order (start
// time, lane, instance, kind).
func SortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Lane != b.Lane {
			return a.Lane < b.Lane
		}
		if a.Inst.Thread != b.Inst.Thread {
			return a.Inst.Thread < b.Inst.Thread
		}
		if a.Inst.Ctx != b.Inst.Ctx {
			return a.Inst.Ctx < b.Inst.Ctx
		}
		return a.Kind < b.Kind
	})
}
