package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tflux/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedEvents is a deterministic event set touching every kind, used by
// the golden and round-trip tests.
func fixedEvents() []Event {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Event{
		{Kind: ThreadDispatch, Lane: 0, Inst: core.Instance{Thread: 1, Ctx: 0}, Start: ms(0)},
		{Kind: ThreadComplete, Lane: 0, Inst: core.Instance{Thread: 1, Ctx: 0}, Start: ms(1), Dur: ms(3)},
		{Kind: ThreadComplete, Lane: 1, Inst: core.Instance{Thread: 1, Ctx: 1}, Start: ms(1), Dur: ms(2)},
		{Kind: ThreadComplete, Lane: 0, Inst: core.Instance{Thread: 9, Ctx: 0}, Start: ms(5), Dur: ms(1), Service: true},
		{Kind: TUBDeposit, Lane: 1, Inst: core.Instance{Thread: 1, Ctx: 1}, Start: ms(3)},
		{Kind: TSUCommand, Lane: 2, Start: ms(4), Dur: ms(1)},
		{Kind: DMATransfer, Lane: 1, Start: ms(2), Dur: ms(1), Bytes: 16384, Note: "in"},
		{Kind: DistRPC, Lane: 0, Inst: core.Instance{Thread: 1, Ctx: 0}, Start: ms(0), Dur: ms(4), Bytes: 512},
		{Kind: CacheStall, Lane: 1, Start: ms(6), Dur: ms(2)},
	}
}

// TestChromeTraceGolden pins the exact exporter output. Regenerate with
// `go test ./internal/obs -run ChromeTraceGolden -update` after an
// intentional format change.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixedEvents()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// Determinism: exporting a shuffled copy yields identical bytes.
	ev := fixedEvents()
	for i, j := 0, len(ev)-1; i < j; i, j = i+1, j-1 {
		ev[i], ev[j] = ev[j], ev[i]
	}
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, ev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("export is order-sensitive: shuffled input produced different bytes")
	}
}

// TestChromeTraceRoundTrip validates the JSON structurally: it must
// parse, every duration event must be a complete slice with µs fields,
// and the lane metadata must name every tid in use.
func TestChromeTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixedEvents()); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}
	named := map[int]bool{}
	used := map[int]bool{}
	var slices, instants int
	for _, e := range trace.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				named[e.TID] = true
			}
		case "X":
			slices++
			used[e.TID] = true
			if e.Dur <= 0 {
				t.Fatalf("complete event %q has dur %v", e.Name, e.Dur)
			}
		case "i":
			instants++
			used[e.TID] = true
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if slices != 7 || instants != 2 {
		t.Fatalf("slices/instants = %d/%d, want 7/2", slices, instants)
	}
	for tid := range used {
		if !named[tid] {
			t.Fatalf("lane %d has events but no thread_name metadata", tid)
		}
	}
}

func TestWriteSummary(t *testing.T) {
	var sb strings.Builder
	if err := WriteSummary(&sb, fixedEvents(), 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"lane", "utilization", "k0", "k1", "thread", "dma", "rpc", "16384"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestWriteEventCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteEventCSV(&sb, fixedEvents()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+len(fixedEvents()) {
		t.Fatalf("csv lines = %d, want %d", len(lines), 1+len(fixedEvents()))
	}
	if lines[0] != "kind,lane,instance,start_ns,dur_ns,service,bytes,note" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if !strings.Contains(sb.String(), "dma,1,") {
		t.Fatalf("csv missing dma row:\n%s", sb.String())
	}
}
