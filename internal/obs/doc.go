// Package obs is the unified observability layer shared by every TFlux
// platform (TFluxSoft, TFluxHard, TFluxCell, TFluxDist and the
// virtual-time model): a typed, low-overhead event model behind a Sink
// interface, a metrics registry of atomic counters, gauges and
// fixed-bucket latency histograms, and exporters for Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing), a human-readable
// summary table, and CSV.
//
// The design goals mirror what the paper's evaluation (§5–§6) needed to
// see: where cycles go per kernel, what the TSU costs, how contended the
// TUB is, how much data DMA staging and the distributed protocol move.
// All five platforms map their activity onto the same seven event kinds,
// so a soft-runtime wall-clock trace and a hard-simulator cycle trace
// are comparable side by side in one trace viewer.
//
// Overhead discipline: every emission site is gated on a nil check of a
// concrete sink or instrument pointer, so a run with observability
// disabled pays only untaken branches — no clock reads, no allocation,
// no atomic traffic. The in-memory Recorder is lock-sharded by execution
// lane so concurrent kernels rarely contend.
package obs
