package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"tflux/internal/core"
)

// TestRecorderConcurrent hammers one recorder from many goroutines (run
// under -race in CI) and checks nothing is lost and the merged order is
// the deterministic export order.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	r.Begin()
	const lanes = 8
	const perLane = 500
	var wg sync.WaitGroup
	for lane := 0; lane < lanes; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < perLane; i++ {
				r.Record(Event{
					Kind:  ThreadComplete,
					Lane:  lane,
					Inst:  core.Instance{Thread: 1, Ctx: core.Context(i)},
					Start: time.Duration(i) * time.Microsecond,
					Dur:   time.Microsecond,
				})
			}
		}(lane)
	}
	wg.Wait()
	events := r.Events()
	if len(events) != lanes*perLane {
		t.Fatalf("events = %d, want %d", len(events), lanes*perLane)
	}
	for i := 1; i < len(events); i++ {
		a, b := events[i-1], events[i]
		if a.Start > b.Start {
			t.Fatalf("event %d out of order: %v after %v", i, b.Start, a.Start)
		}
		if a.Start == b.Start && a.Lane > b.Lane {
			t.Fatalf("event %d lane tie-break broken: lane %d after %d", i, b.Lane, a.Lane)
		}
	}
	// Begin resets.
	r.Begin()
	if n := r.Len(); n != 0 {
		t.Fatalf("after Begin, %d events remain", n)
	}
}

func TestRecorderNow(t *testing.T) {
	r := NewRecorder()
	if r.Now() != 0 {
		t.Fatal("Now before Begin should be 0")
	}
	r.Begin()
	if r.Now() < 0 {
		t.Fatal("Now went backwards")
	}
}

// TestHistogramBoundaries pins the bucket edge semantics: a sample equal
// to a bound lands in that bound's bucket; one past it lands in the
// next; anything beyond the last bound lands in the overflow bucket.
func TestHistogramBoundaries(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{0, 10} {
		h.Observe(v)
	}
	h.Observe(11)   // (10, 100]
	h.Observe(100)  // (10, 100]
	h.Observe(101)  // (100, 1000]
	h.Observe(1000) // (100, 1000]
	h.Observe(1001) // overflow
	h.Observe(1 << 40)

	bounds, counts := h.Buckets()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("buckets = %v / %v", bounds, counts)
	}
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 0+10+11+100+101+1000+1001+(1<<40) {
		t.Fatalf("sum = %d", h.Sum())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i) * 1000)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("a.count") != c {
		t.Fatal("counter not memoized")
	}
	g := r.Gauge("a.depth")
	g.Add(5)
	g.Add(-2)
	if g.Value() != 3 || g.Max() != 5 {
		t.Fatalf("gauge = %d max %d", g.Value(), g.Max())
	}
	h := r.Histogram("a.lat", LatencyBuckets)
	h.ObserveDuration(2 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("hist count = %d", h.Count())
	}

	var sb strings.Builder
	if err := r.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"a.count", "counter", "3", "a.depth", "max 5", "a.lat", "n=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "metric,kind,value\n") {
		t.Fatalf("csv header missing:\n%s", sb.String())
	}
}

// TestNilRegistry pins the "disabled" contract: a nil registry hands out
// nil instruments so emission sites can gate on one pointer.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	var sb strings.Builder
	if err := r.WriteSummary(&sb); err != nil {
		t.Fatalf("nil registry WriteSummary: %v", err)
	}
	if !strings.Contains(sb.String(), "metric") {
		t.Fatalf("nil registry summary should still print the header, got %q", sb.String())
	}
}

func TestMulti(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Fatal("Multi of nils should be nil")
	}
	a, b := NewRecorder(), NewRecorder()
	if Multi(a, nil) != Sink(a) {
		t.Fatal("Multi of one sink should be that sink")
	}
	m := Multi(a, b)
	m.Begin()
	m.Record(Event{Kind: TSUCommand})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out failed: %d / %d", a.Len(), b.Len())
	}
}

func TestUtilization(t *testing.T) {
	events := []Event{
		{Kind: ThreadComplete, Lane: 0, Start: 0, Dur: 10 * time.Millisecond},
		{Kind: ThreadComplete, Lane: 1, Start: 0, Dur: 5 * time.Millisecond},
		{Kind: TSUCommand, Lane: 2, Start: 9 * time.Millisecond, Dur: time.Millisecond},
	}
	u := Utilization(events, 2)
	if len(u) != 2 {
		t.Fatalf("util = %v", u)
	}
	if u[0] != 1.0 || u[1] != 0.5 {
		t.Fatalf("util = %v, want [1 0.5]", u)
	}
	if got := Utilization(nil, 2); got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty util = %v", got)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}
