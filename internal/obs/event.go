package obs

import (
	"time"

	"tflux/internal/core"
)

// Kind classifies an Event. The kinds cover the activity every TFlux
// platform shares: DThread scheduling, TSU command processing, TUB
// traffic, Cell DMA staging, distributed RPCs and failovers, and memory
// stalls.
type Kind uint8

// The event kinds.
const (
	// ThreadDispatch marks the instant the TSU hands a ready DThread to
	// its owning execution lane (zero duration).
	ThreadDispatch Kind = iota
	// ThreadComplete spans one DThread body execution on a lane.
	ThreadComplete
	// TSUCommand spans the TSU (emulator goroutine, PPE loop, hardware
	// device or coordinator) processing one completion command.
	TSUCommand
	// TUBDeposit marks a Kernel depositing a completion record into the
	// Thread-to-Update Buffer.
	TUBDeposit
	// DMATransfer spans one Local Store staging operation on the Cell
	// substrate; Bytes carries the traffic.
	DMATransfer
	// DistRPC spans one coordinator→worker Exec round trip on TFluxDist;
	// Bytes carries the import+export payload.
	DistRPC
	// CacheStall spans the memory-hierarchy cycles of one DThread on
	// TFluxHard (the non-compute part of its execution).
	CacheStall
	// DistFailover marks the instant the TFluxDist coordinator declares
	// a worker node dead and drains its leases; Note carries the
	// detection reason.
	DistFailover
	// ServeAdmit marks a tfluxd daemon admitting one program submission;
	// Note carries "tenant/name".
	ServeAdmit
	// ServeReject marks a declined submission; Note carries the reason.
	ServeReject
	// ServeResult spans one admitted program from submission to result
	// delivery (the admission-to-completion latency); Note carries
	// "tenant/name".
	ServeResult

	numKinds
)

// String names the kind as it appears in traces and summaries.
func (k Kind) String() string {
	switch k {
	case ThreadDispatch:
		return "dispatch"
	case ThreadComplete:
		return "thread"
	case TSUCommand:
		return "tsu"
	case TUBDeposit:
		return "tub"
	case DMATransfer:
		return "dma"
	case DistRPC:
		return "rpc"
	case CacheStall:
		return "stall"
	case DistFailover:
		return "failover"
	case ServeAdmit:
		return "admit"
	case ServeReject:
		return "reject"
	case ServeResult:
		return "result"
	}
	return "unknown"
}

// Event is one observed occurrence. Lane is the execution lane the event
// belongs to — a Kernel, SPE, simulated core or worker node index; by
// convention platforms place their TSU/coordinator on the lane one past
// the last compute lane. Start is relative to the sink's Begin; on the
// simulated platforms it is the cycle count mapped through a fixed cycle
// period, so hard and soft traces share a time axis.
type Event struct {
	Kind    Kind
	Lane    int
	Inst    core.Instance
	Start   time.Duration
	Dur     time.Duration
	Service bool   // Inlet/Outlet rather than application thread
	Bytes   int64  // payload for DMATransfer / DistRPC
	Note    string // optional detail ("in", "out", "blocked", ...)
}

// End returns the event's end time.
func (e Event) End() time.Duration { return e.Start + e.Dur }

// Sink receives events from a run. Begin resets the sink and marks the
// run's time origin; Now returns the time elapsed since Begin, which
// wall-clock producers use to stamp Event.Start. Record must be safe for
// concurrent use.
type Sink interface {
	Begin()
	Record(Event)
	Now() time.Duration
}

// Nop is a sink that discards everything: the zero-cost "disabled"
// implementation for call sites that want a non-nil sink.
type Nop struct{}

// Begin implements Sink.
func (Nop) Begin() {}

// Record implements Sink.
func (Nop) Record(Event) {}

// Now implements Sink.
func (Nop) Now() time.Duration { return 0 }

// multi fans Record out to several sinks; Now follows the first.
type multi []Sink

func (m multi) Begin() {
	for _, s := range m {
		s.Begin()
	}
}

func (m multi) Record(e Event) {
	for _, s := range m {
		s.Record(e)
	}
}

func (m multi) Now() time.Duration { return m[0].Now() }

// Multi combines sinks, dropping nils. It returns nil when none remain,
// the sink itself when one remains, and a fan-out sink otherwise.
func Multi(sinks ...Sink) Sink {
	var out multi
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
