package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// Counter is a monotonically increasing atomic counter. All methods are
// nil-receiver-safe, so code holding a counter from a nil Registry can
// update it unconditionally.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Set overwrites the value (used to publish end-of-run totals computed
// elsewhere, e.g. tsu.Stats).
func (c *Counter) Set(n int64) {
	if c != nil {
		c.v.Store(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that also tracks its high-water
// mark (e.g. TSU ready-queue depth). Update methods are
// nil-receiver-safe, matching Counter.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set overwrites the value and updates the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.bumpMax(v)
}

// Add moves the value by delta and updates the high-water mark.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.bumpMax(g.v.Add(delta))
}

func (g *Gauge) bumpMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Histogram is a fixed-bucket histogram of int64 samples (typically
// nanoseconds or bytes). Bucket i counts samples ≤ bounds[i]; one
// overflow bucket counts the rest. Observation is lock-free.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64
	sum    atomic.Int64
}

// newHistogram builds a histogram with the given ascending upper bounds.
func newHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample. Nil-receiver-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i, j := 0, len(h.bounds)
	for i < j {
		m := (i + j) / 2
		if v <= h.bounds[m] {
			j = m
		} else {
			i = m + 1
		}
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the total number of samples.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Buckets returns the bucket upper bounds and the per-bucket counts (the
// last count is the overflow bucket).
func (h *Histogram) Buckets() (bounds []int64, counts []int64) {
	bounds = append([]int64(nil), h.bounds...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// LatencyBuckets is the default bucket layout for wall-clock latency
// histograms: 1µs to 10s, decade-spaced with a 3× midpoint.
var LatencyBuckets = []int64{
	int64(time.Microsecond), 3 * int64(time.Microsecond),
	int64(10 * time.Microsecond), 3 * int64(10*time.Microsecond),
	int64(100 * time.Microsecond), 3 * int64(100*time.Microsecond),
	int64(time.Millisecond), 3 * int64(time.Millisecond),
	int64(10 * time.Millisecond), 3 * int64(10*time.Millisecond),
	int64(100 * time.Millisecond), int64(time.Second), int64(10 * time.Second),
}

// ByteBuckets is the default bucket layout for payload-size histograms.
var ByteBuckets = []int64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 16 << 20,
}

// CountBuckets is the default bucket layout for small-count histograms
// (e.g. batch occupancy, queue depth samples).
var CountBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Registry is a named collection of instruments. Lookup is mutex-guarded
// and intended for setup and export; hot paths hold the returned
// instrument pointer. A nil *Registry is a valid "disabled" registry:
// its lookup methods return nil, and emission sites gate on that.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls keep the original bounds). Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// metricRow is one exported line of the registry.
type metricRow struct {
	name, kind, value string
}

func (r *Registry) rows() []metricRow {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var rows []metricRow
	for name, c := range r.counters {
		rows = append(rows, metricRow{name, "counter", fmt.Sprintf("%d", c.Value())})
	}
	for name, g := range r.gauges {
		rows = append(rows, metricRow{name, "gauge", fmt.Sprintf("%d (max %d)", g.Value(), g.Max())})
	}
	for name, h := range r.hists {
		n := h.Count()
		mean := int64(0)
		if n > 0 {
			mean = h.Sum() / n
		}
		rows = append(rows, metricRow{name, "histogram",
			fmt.Sprintf("n=%d sum=%d mean=%d p50=%d p95=%d p99=%d",
				n, h.Sum(), mean, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows
}

// Quantile returns a bucket-interpolated estimate of the q-quantile:
// the bucket covering the quantile is located and the value is linearly
// interpolated between its bounds by the sample's rank within it. The
// overflow bucket has no upper bound, so quantiles landing there report
// its lower edge. q is clamped to [0,1]; an empty histogram reports 0.
// Nil-receiver-safe.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var seen int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(seen)+float64(c) >= target {
			var lo int64
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) {
				return lo // overflow bucket: no upper bound to interpolate to
			}
			frac := (target - float64(seen)) / float64(c)
			return lo + int64(frac*float64(h.bounds[i]-lo)+0.5)
		}
		seen += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// QuantileBound returns the smallest bucket upper bound covering the
// given quantile of samples — the bucketed estimate service dashboards
// report as p50/p99. Nil-receiver-safe.
func (h *Histogram) QuantileBound(q float64) int64 {
	if h == nil {
		return 0
	}
	return h.quantileBound(q)
}

// quantileBound returns the smallest bucket upper bound covering the
// given quantile of samples (the overflow bucket reports the max bound).
func (h *Histogram) quantileBound(q float64) int64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// WriteSummary renders the registry as an aligned name/kind/value table
// sorted by metric name.
func (r *Registry) WriteSummary(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tkind\tvalue")
	for _, row := range r.rows() {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", row.name, row.kind, row.value)
	}
	return tw.Flush()
}

// WriteCSV renders the registry as "metric,kind,value" CSV rows sorted
// by metric name.
func (r *Registry) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "metric,kind,value"); err != nil {
		return err
	}
	for _, row := range r.rows() {
		if _, err := fmt.Fprintf(w, "%s,%s,%q\n", row.name, row.kind, row.value); err != nil {
			return err
		}
	}
	return nil
}
