// Package workload implements the paper's five-benchmark experimental
// suite (§5, Table 1): TRAPEZ and MMULT (Numerical-Recipes-style kernels),
// QSORT and SUSAN (MiBench), and FFT (NAS), each in two forms —
//
//   - the original sequential algorithm (the speedup baseline, carrying no
//     TFlux overheads), and
//   - the DDM parallelization used in the paper, expressed as a
//     core.Program with the same dependency structure (reductions, merge
//     trees, phase barriers) plus the cost and memory-region models the
//     simulated platforms need.
//
// The unroll factor reproduces the paper's loop-unrolling study: the
// benchmark's parallel outer loop is split into DThread instances of
// `unroll` base grains each, so larger unroll factors mean coarser
// DThreads and less TSU traffic (§6.2.2: TFluxHard peaks at small unroll,
// TFluxSoft needs ≥16, TFluxCell needs ~64).
//
// Outputs of the parallel and sequential versions are compared bitwise:
// every output element is produced by exactly one DThread running the same
// code as the sequential loop, so even floating-point results must match
// exactly.
package workload

import (
	"fmt"

	"tflux/internal/cellsim"
	"tflux/internal/core"
	"tflux/internal/hardsim"
)

// Platform selects the Table 1 problem-size column: the paper uses
// different sizes for the Simulated (S), Native (N) and Cell (C) systems.
type Platform int

// The three platforms of the evaluation.
const (
	Simulated Platform = iota
	Native
	Cell
)

func (p Platform) String() string {
	switch p {
	case Simulated:
		return "simulated"
	case Native:
		return "native"
	case Cell:
		return "cell"
	}
	return "unknown"
}

// SizeClass is the Small/Medium/Large problem-size axis of Table 1.
type SizeClass int

// The three size classes.
const (
	Small SizeClass = iota
	Medium
	Large
)

func (s SizeClass) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return "unknown"
}

// Job is one benchmark at one problem size, holding its inputs, its
// sequential reference output and its parallel output.
type Job interface {
	// Name returns the benchmark name (e.g. "MMULT").
	Name() string
	// RunSequential executes the original single-threaded algorithm,
	// producing the reference output. It is the timing baseline.
	RunSequential()
	// SequentialSteps returns the cost/memory model of the sequential run
	// for the TFluxHard cycle-simulator baseline.
	SequentialSteps() []hardsim.Step
	// Build returns a fresh DDM program producing the parallel output.
	// kernels hints work distribution; unroll sets DThread granularity.
	Build(kernels, unroll int) (*core.Program, error)
	// SharedBuffers registers the program's buffers for the TFluxCell
	// substrate (zero-copy views over the job's arrays).
	SharedBuffers() *cellsim.SharedVariableBuffer
	// ResetOutput clears the parallel output before a run.
	ResetOutput()
	// Verify compares the parallel output against the sequential
	// reference; RunSequential must have run once first.
	Verify() error
}

// Spec describes one benchmark of the suite with its Table 1 metadata.
type Spec struct {
	Name        string
	Source      string // "kernel", "MiBench", "NAS"
	Description string
	// Sizes returns the Small/Medium/Large size parameters for a
	// platform; ok is false when the paper does not run the benchmark
	// there (FFT is absent from the Cell evaluation, Figure 7).
	Sizes func(pf Platform) (sizes [3]int, ok bool)
	// SizeLabel formats a size parameter as the paper prints it.
	SizeLabel func(param int) string
	// Make builds a Job for one size parameter.
	Make func(param int) Job
}

// Suite returns the five benchmarks in the paper's Table 1 order.
func Suite() []Spec {
	return []Spec{TrapezSpec(), MMultSpec(), QSortSpec(), SusanSpec(), FFTSpec()}
}

// ByName returns the suite benchmark with the given (case-sensitive) name.
func ByName(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// grains computes the instance count for a parallel outer loop of n base
// grains at the given unroll factor.
func grains(n, unroll int) int {
	if unroll < 1 {
		unroll = 1
	}
	g := (n + unroll - 1) / unroll
	if g < 1 {
		g = 1
	}
	return g
}

// chunk returns the half-open range [lo, hi) of the i-th of k balanced
// chunks over n items.
func chunk(n, k, i int) (lo, hi int) {
	lo = i * n / k
	hi = (i + 1) * n / k
	return lo, hi
}

// streamThreshold is the resident-region size above which Access models
// mark regions as streamed for the Cell substrate (a comfortable fit in
// the 224 KB of usable Local Store alongside the other operands).
const streamThreshold = 48 << 10

// region builds a MemRegion, streaming it when it is too large to keep
// resident in an SPE Local Store.
func region(buf string, off, size int64, write bool) core.MemRegion {
	return core.MemRegion{Buffer: buf, Offset: off, Size: size, Write: write, Stream: size > streamThreshold}
}

// xorshift32 is the deterministic input generator used by QSORT and SUSAN;
// a fixed simple PRNG keeps every platform's input bit-identical.
func xorshift32(x uint32) uint32 {
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	return x
}
