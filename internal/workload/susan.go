package workload

import (
	"fmt"

	"tflux/internal/byteview"
	"tflux/internal/cellsim"
	"tflux/internal/core"
	"tflux/internal/hardsim"
)

// SUSAN: the MiBench image smoothing kernel (brightness-threshold weighted
// averaging — the smoothing mode of SUSAN image recognition). Per §6.1.2
// the benchmark has three independently parallelized phases: an
// initialization phase that produces the input image, the processing
// (smoothing) phase, and a phase that writes the results to a large output
// array. Each phase parallelizes over row blocks with barriers between
// phases; all three exploit their parallelism well, giving SUSAN the best
// TFluxHard speedup in the paper (24.8 on 27 nodes).
//
// The size parameter packs the image dimensions (w<<16 | h); Table 1 uses
// 256x288, 512x576 and 1024x576.

const (
	susanInitCyclesPerPixel   = 6
	susanSmoothCyclesPerPixel = 45 // 3x3 mask, LUT weight per neighbour
	susanOutCyclesPerPixel    = 4
	// susanThreshold is the brightness-difference threshold of the
	// similarity LUT (MiBench's default smoothing threshold region).
	susanThreshold = 27
)

// Susan is the SUSAN Job.
type Susan struct {
	w, h    int
	lut     [512]uint16 // brightness similarity weights, index diff+255
	img     []byte      // parallel input image (phase 1 output)
	smooth  []byte      // phase 2 output
	final   []byte      // phase 3 output
	ref     []byte      // sequential final output
	seqImg  []byte      // sequential scratch (preallocated so the baseline
	seqSm   []byte      // measures compute, not allocation)
	refDone bool
}

// SusanSpec returns the Table 1 entry for SUSAN.
func SusanSpec() Spec {
	pack := func(w, h int) int { return w<<16 | h }
	return Spec{
		Name:        "SUSAN",
		Source:      "MiBench",
		Description: "Image recognition / smoothing",
		Sizes: func(Platform) ([3]int, bool) {
			return [3]int{pack(256, 288), pack(512, 576), pack(1024, 576)}, true
		},
		SizeLabel: func(p int) string { return fmt.Sprintf("%dx%d", p>>16, p&0xFFFF) },
		Make:      func(p int) Job { return NewSusan(p>>16, p&0xFFFF) },
	}
}

// NewSusan builds a SUSAN job over a w×h 8-bit image.
func NewSusan(w, h int) *Susan {
	s := &Susan{
		w: w, h: h,
		img:    make([]byte, w*h),
		smooth: make([]byte, w*h),
		final:  make([]byte, w*h),
		ref:    make([]byte, w*h),
		seqImg: make([]byte, w*h),
		seqSm:  make([]byte, w*h),
	}
	// MiBench-style brightness similarity LUT: 100·exp(-(d/t)²), here in
	// fixed point without math.Exp so results are bit-exact integers.
	for d := -255; d <= 255; d++ {
		x := (d * d * 64) / (susanThreshold * susanThreshold)
		w := 1024 >> uint(min(x/16, 10)) // geometric decay, 1024..1
		s.lut[d+255] = uint16(w)
	}
	return s
}

// Name implements Job.
func (s *Susan) Name() string { return "SUSAN" }

// initRows synthesizes the input image rows [lo, hi): a deterministic
// gradient plus pseudo-random texture.
func (s *Susan) initRows(dst []byte, lo, hi int) {
	for y := lo; y < hi; y++ {
		seed := xorshift32(uint32(y)*2654435761 + 1)
		row := dst[y*s.w : (y+1)*s.w]
		for x := range row {
			seed = xorshift32(seed)
			row[x] = byte((x*255)/s.w ^ int(seed&63))
		}
	}
}

// smoothRows applies the brightness-threshold 3x3 smoothing to rows
// [lo, hi): each output pixel is the similarity-weighted average of its
// neighbourhood (border pixels pass through).
func (s *Susan) smoothRows(src, dst []byte, lo, hi int) {
	w, h := s.w, s.h
	for y := lo; y < hi; y++ {
		for x := 0; x < w; x++ {
			c := src[y*w+x]
			if y == 0 || y == h-1 || x == 0 || x == w-1 {
				dst[y*w+x] = c
				continue
			}
			var num, den uint32
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dy == 0 && dx == 0 {
						continue
					}
					p := src[(y+dy)*w+x+dx]
					wt := uint32(s.lut[int(p)-int(c)+255])
					num += wt * uint32(p)
					den += wt
				}
			}
			if den == 0 {
				dst[y*w+x] = c
			} else {
				dst[y*w+x] = byte(num / den)
			}
		}
	}
}

// outputRows writes the smoothed rows [lo, hi) to the final output array.
func (s *Susan) outputRows(src, dst []byte, lo, hi int) {
	copy(dst[lo*s.w:hi*s.w], src[lo*s.w:hi*s.w])
}

// RunSequential implements Job.
func (s *Susan) RunSequential() {
	s.initRows(s.seqImg, 0, s.h)
	s.smoothRows(s.seqImg, s.seqSm, 0, s.h)
	s.outputRows(s.seqSm, s.ref, 0, s.h)
	s.refDone = true
}

// SequentialSteps implements Job.
func (s *Susan) SequentialSteps() []hardsim.Step {
	px := int64(s.w) * int64(s.h)
	bytes := px
	return []hardsim.Step{
		{Cost: px * susanInitCyclesPerPixel, Regions: []core.MemRegion{region("img", 0, bytes, true)}},
		{Cost: px * susanSmoothCyclesPerPixel, Regions: []core.MemRegion{
			region("img", 0, bytes, false), region("smooth", 0, bytes, true)}},
		{Cost: px * susanOutCyclesPerPixel, Regions: []core.MemRegion{
			region("smooth", 0, bytes, false), region("final", 0, bytes, true)}},
	}
}

// Build implements Job: three row-block loop DThreads with phase barriers
// (init→smooth is all-to-all because smoothing needs halo rows; smooth→out
// is one-to-one).
func (s *Susan) Build(kernels, unroll int) (*core.Program, error) {
	inst := grains(s.h, unroll)
	w, h := s.w, s.h
	img, smooth, final := s.img, s.smooth, s.final

	rowsOf := func(ctx core.Context) (int, int) { return chunk(h, inst, int(ctx)) }
	rowRegion := func(buf string, lo, hi int, write bool) core.MemRegion {
		return region(buf, int64(lo)*int64(w), int64(hi-lo)*int64(w), write)
	}

	p := core.NewProgram("susan")
	bytes := int64(w) * int64(h)
	p.AddBuffer("img", bytes)
	p.AddBuffer("smooth", bytes)
	p.AddBuffer("final", bytes)
	b := p.AddBlock()

	init := core.NewTemplate(1, "init", func(ctx core.Context) {
		lo, hi := rowsOf(ctx)
		s.initRows(img, lo, hi)
	})
	init.Instances = core.Context(inst)
	init.Cost = func(ctx core.Context) int64 {
		lo, hi := rowsOf(ctx)
		return int64(hi-lo) * int64(w) * susanInitCyclesPerPixel
	}
	init.Access = func(ctx core.Context) []core.MemRegion {
		lo, hi := rowsOf(ctx)
		return []core.MemRegion{rowRegion("img", lo, hi, true)}
	}

	proc := core.NewTemplate(2, "smooth", func(ctx core.Context) {
		lo, hi := rowsOf(ctx)
		s.smoothRows(img, smooth, lo, hi)
	})
	proc.Instances = core.Context(inst)
	proc.Cost = func(ctx core.Context) int64 {
		lo, hi := rowsOf(ctx)
		return int64(hi-lo) * int64(w) * susanSmoothCyclesPerPixel
	}
	proc.Access = func(ctx core.Context) []core.MemRegion {
		lo, hi := rowsOf(ctx)
		rlo, rhi := lo-1, hi+1 // halo rows
		if rlo < 0 {
			rlo = 0
		}
		if rhi > h {
			rhi = h
		}
		return []core.MemRegion{
			rowRegion("img", rlo, rhi, false),
			rowRegion("smooth", lo, hi, true),
		}
	}

	out := core.NewTemplate(3, "output", func(ctx core.Context) {
		lo, hi := rowsOf(ctx)
		s.outputRows(smooth, final, lo, hi)
	})
	out.Instances = core.Context(inst)
	out.Cost = func(ctx core.Context) int64 {
		lo, hi := rowsOf(ctx)
		return int64(hi-lo) * int64(w) * susanOutCyclesPerPixel
	}
	out.Access = func(ctx core.Context) []core.MemRegion {
		lo, hi := rowsOf(ctx)
		return []core.MemRegion{
			rowRegion("smooth", lo, hi, false),
			rowRegion("final", lo, hi, true),
		}
	}

	init.Then(2, core.OneToAll{})
	proc.Then(3, core.OneToOne{})
	b.Add(init)
	b.Add(proc)
	b.Add(out)
	return p, nil
}

// SharedBuffers implements Job.
func (s *Susan) SharedBuffers() *cellsim.SharedVariableBuffer {
	svb := cellsim.NewSharedVariableBuffer()
	svb.Register("img", byteview.Bytes(s.img))
	svb.Register("smooth", byteview.Bytes(s.smooth))
	svb.Register("final", byteview.Bytes(s.final))
	return svb
}

// ResetOutput implements Job.
func (s *Susan) ResetOutput() {
	for i := range s.final {
		s.img[i], s.smooth[i], s.final[i] = 0, 0, 0
	}
}

// Verify implements Job: integer pixel pipeline, bitwise comparison.
func (s *Susan) Verify() error {
	if !s.refDone {
		s.RunSequential()
	}
	for i := range s.ref {
		if s.final[i] != s.ref[i] {
			return fmt.Errorf("SUSAN: pixel (%d,%d) = %d, want %d", i%s.w, i/s.w, s.final[i], s.ref[i])
		}
	}
	return nil
}
