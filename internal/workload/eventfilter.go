package workload

import (
	"fmt"
	"sync/atomic"

	"tflux/internal/core"
	"tflux/internal/stream"
)

// efFan is the gather fan-in of the aggregate stage: each aggregate
// instance reduces efFan filtered events.
const efFan = 4

// EventFilter is the streaming benchmark: an ATLAS-DataFlow-style
// three-stage event filter (decode → filter → aggregate) over a
// synthetic deterministic event stream. Each event's payload is a
// xorshift mix of its sequence number, the filter keeps ~5/8 of the
// events, and each retired window adds its aggregate sum into a global
// checksum — so a run is verifiable bit-exactly against the sequential
// reference, which is how lost or duplicated events are detected.
//
// All scratch is slot-indexed (recycled with the window's SM slot) and
// zeroed at export, so pad instances in a partial final window read
// zeros and contribute nothing.
type EventFilter struct {
	w     core.Context
	slots int
	seed  uint32

	decoded  [][]uint64 // [slot][w]   decode output
	filtered [][]uint64 // [slot][w]   filter output (0 = rejected)
	sums     [][]uint64 // [slot][w/efFan] aggregate partials

	checksum atomic.Uint64
	accepted atomic.Int64
	windows  atomic.Int64
}

// NewEventFilter builds the benchmark state for windows of w events
// flowing through the given number of recycled slots.
func NewEventFilter(w core.Context, slots int, seed uint32) (*EventFilter, error) {
	if w <= 0 || w%efFan != 0 {
		return nil, fmt.Errorf("workload: event-filter window %d must be a positive multiple of %d", w, efFan)
	}
	if slots <= 0 {
		return nil, fmt.Errorf("workload: event-filter needs at least one slot")
	}
	e := &EventFilter{w: w, slots: slots, seed: seed}
	e.decoded = make([][]uint64, slots)
	e.filtered = make([][]uint64, slots)
	e.sums = make([][]uint64, slots)
	for s := 0; s < slots; s++ {
		e.decoded[s] = make([]uint64, w)
		e.filtered[s] = make([]uint64, w)
		e.sums[s] = make([]uint64, w/efFan)
	}
	return e, nil
}

// decodeVal is the per-event payload: a deterministic function of the
// sequence number alone, so the sequential reference can recompute it.
func (e *EventFilter) decodeVal(seq int64) uint64 {
	// Additive seed mixing: a pure XOR would only permute the input set
	// over a contiguous sequence range, leaving the checksum
	// seed-invariant.
	lo := xorshift32(uint32(seq)*2654435761 + e.seed*0x85ebca6b)
	hi := xorshift32(lo ^ 0x9e3779b9)
	return uint64(hi)<<32 | uint64(lo)
}

// filterVal keeps ~5/8 of the events; rejected events become 0.
func filterVal(v uint64) uint64 {
	if v != 0 && v%8 < 5 {
		return v
	}
	return 0
}

// Pipeline returns the three-stage streaming pipeline over this state.
// The scratch declarations mirror the three slot-indexed arrays above,
// all ZeroOnExport (export zeroes the slot), so the streaming verifier
// can prove no read observes a recycled slot's stale data — including
// in the padded partial final window. The accepted counter and the
// export checksum accumulate across windows and are declared
// shed-tolerant: under the Shed policy the benchmark deliberately
// reports what was admitted, not what was offered.
func (e *EventFilter) Pipeline() *stream.Pipeline {
	return &stream.Pipeline{
		Name:   "eventfilter",
		Window: e.w,
		Scratch: []stream.ScratchDecl{
			{Name: "decoded", Len: e.w, ZeroOnExport: true},
			{Name: "filtered", Len: e.w, ZeroOnExport: true},
			{Name: "sums", Len: e.w / efFan, ZeroOnExport: true},
		},
		Stages: []stream.Stage{
			{Name: "decode", Instances: e.w, Map: core.OneToOne{},
				Body: func(c stream.Ctx) {
					e.decoded[c.Slot][c.Local] = e.decodeVal(c.Seq)
				},
				Scratch: func(l core.Context) []stream.ScratchAccess {
					return []stream.ScratchAccess{
						{Array: "decoded", Lo: l, Hi: l + 1, Write: true},
					}
				}},
			{Name: "filter", Instances: e.w, Map: core.Gather{Fan: efFan},
				Accumulates: true, ShedTolerant: true,
				Body: func(c stream.Ctx) {
					v := filterVal(e.decoded[c.Slot][c.Local])
					e.filtered[c.Slot][c.Local] = v
					if v != 0 {
						e.accepted.Add(1)
					}
				},
				Scratch: func(l core.Context) []stream.ScratchAccess {
					return []stream.ScratchAccess{
						{Array: "decoded", Lo: l, Hi: l + 1},
						{Array: "filtered", Lo: l, Hi: l + 1, Write: true},
					}
				}},
			{Name: "aggregate", Instances: e.w / efFan,
				Body: func(c stream.Ctx) {
					var sum uint64
					for i := core.Context(0); i < efFan; i++ {
						sum += e.filtered[c.Slot][c.Local*efFan+i]
					}
					e.sums[c.Slot][c.Local] = sum
				},
				Scratch: func(l core.Context) []stream.ScratchAccess {
					return []stream.ScratchAccess{
						{Array: "filtered", Lo: l * efFan, Hi: (l + 1) * efFan},
						{Array: "sums", Lo: l, Hi: l + 1, Write: true},
					}
				}},
		},
		ExportAccumulates:  true,
		ExportShedTolerant: true,
		Export:             e.export,
	}
}

// export harvests a retired window's aggregate into the checksum and
// zeroes the slot's scratch for its next occupant (which is also what
// makes pad instances read zeros).
func (e *EventFilter) export(win int64, slot int) {
	var sum uint64
	for _, s := range e.sums[slot] {
		sum += s
	}
	e.checksum.Add(sum)
	e.windows.Add(1)
	clear(e.decoded[slot])
	clear(e.filtered[slot])
	clear(e.sums[slot])
}

// Checksum returns the accumulated sum over all retired windows.
func (e *EventFilter) Checksum() uint64 { return e.checksum.Load() }

// Accepted returns how many events passed the filter.
func (e *EventFilter) Accepted() int64 { return e.accepted.Load() }

// Windows returns how many windows were exported.
func (e *EventFilter) Windows() int64 { return e.windows.Load() }

// Reference computes the sequential result over events 0..n-1: the
// checksum and accepted count a lossless exactly-once run must produce
// (window structure does not change a sum, and pads contribute zero).
func (e *EventFilter) Reference(n int64) (checksum uint64, accepted int64) {
	for seq := int64(0); seq < n; seq++ {
		if v := filterVal(e.decodeVal(seq)); v != 0 {
			checksum += v
			accepted++
		}
	}
	return checksum, accepted
}

// Verify compares the streamed result against the sequential reference
// for a run that admitted all n events (Block policy, nothing shed).
// Any lost, duplicated or misattributed event changes the checksum.
func (e *EventFilter) Verify(n int64) error {
	wantSum, wantAcc := e.Reference(n)
	if got := e.Checksum(); got != wantSum {
		return fmt.Errorf("workload: event-filter checksum %#x, sequential reference %#x (events lost or duplicated)", got, wantSum)
	}
	if got := e.Accepted(); got != wantAcc {
		return fmt.Errorf("workload: event-filter accepted %d events, sequential reference %d", got, wantAcc)
	}
	return nil
}
