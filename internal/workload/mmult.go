package workload

import (
	"fmt"

	"tflux/internal/byteview"
	"tflux/internal/cellsim"
	"tflux/internal/core"
	"tflux/internal/hardsim"
)

// MMULT: dense n×n float64 matrix multiply C = A×B, parallelized over row
// blocks. It is embarrassingly parallel but, on TFluxHard, limited by
// coherency misses on the shared B matrix (§6.1.2) — every worker streams
// all of B, which the MESI model charges. On the Cell substrate A/B/C row
// panels are DMA-staged; panels above the Local Store threshold stream
// through the double-buffered window, as real SPE matmuls do.
//
// The size parameter is n (Table 1: 64/128/256 simulated,
// 64/256/1024 native and Cell).

// mmultCyclesPerMAC models one multiply-accumulate plus loop overhead on
// the simulated in-order core.
const mmultCyclesPerMAC = 6

// MMult is the MMULT Job.
type MMult struct {
	n       int
	a, b    []float64
	cRef    []float64
	cPar    []float64
	refDone bool
}

// MMultSpec returns the Table 1 entry for MMULT.
func MMultSpec() Spec {
	return Spec{
		Name:        "MMULT",
		Source:      "kernel",
		Description: "Matrix multiply",
		Sizes: func(pf Platform) ([3]int, bool) {
			if pf == Simulated {
				return [3]int{64, 128, 256}, true
			}
			return [3]int{64, 256, 1024}, true
		},
		SizeLabel: func(p int) string { return fmt.Sprintf("%dx%d", p, p) },
		Make:      func(p int) Job { return NewMMult(p) },
	}
}

// NewMMult builds an MMULT job with deterministic inputs.
func NewMMult(n int) *MMult {
	m := &MMult{
		n:    n,
		a:    make([]float64, n*n),
		b:    make([]float64, n*n),
		cRef: make([]float64, n*n),
		cPar: make([]float64, n*n),
	}
	s := uint32(0x9E3779B9)
	for i := range m.a {
		s = xorshift32(s)
		m.a[i] = float64(s%1000) / 999
		s = xorshift32(s)
		m.b[i] = float64(s%1000) / 999
	}
	return m
}

// Name implements Job.
func (m *MMult) Name() string { return "MMULT" }

// multiplyRows computes rows [lo, hi) of dst = A×B with the classic i-k-j
// loop (row-major friendly). Sequential baseline and DThreads share it.
func (m *MMult) multiplyRows(dst []float64, lo, hi int) {
	n := m.n
	for i := lo; i < hi; i++ {
		ci := dst[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		ai := m.a[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			aik := ai[k]
			bk := m.b[k*n : (k+1)*n]
			for j := 0; j < n; j++ {
				ci[j] += aik * bk[j]
			}
		}
	}
}

// RunSequential implements Job.
func (m *MMult) RunSequential() {
	m.multiplyRows(m.cRef, 0, m.n)
	m.refDone = true
}

// rowRegions describes the memory a row-block [lo,hi) touches: its A and C
// panels plus all of B.
func (m *MMult) rowRegions(lo, hi int) []core.MemRegion {
	rowBytes := int64(m.n) * 8
	return []core.MemRegion{
		region("A", int64(lo)*rowBytes, int64(hi-lo)*rowBytes, false),
		region("B", 0, int64(m.n)*rowBytes, false),
		region("C", int64(lo)*rowBytes, int64(hi-lo)*rowBytes, true),
	}
}

// rowCost is the compute model for rows [lo,hi).
func (m *MMult) rowCost(lo, hi int) int64 {
	return int64(hi-lo) * int64(m.n) * int64(m.n) * mmultCyclesPerMAC
}

// SequentialSteps implements Job: the sequential multiply in 16-row bands,
// each touching its panels and all of B.
func (m *MMult) SequentialSteps() []hardsim.Step {
	var steps []hardsim.Step
	for lo := 0; lo < m.n; lo += 16 {
		hi := lo + 16
		if hi > m.n {
			hi = m.n
		}
		steps = append(steps, hardsim.Step{Cost: m.rowCost(lo, hi), Regions: m.rowRegions(lo, hi)})
	}
	return steps
}

// Build implements Job: one loop DThread over row blocks of `unroll` rows,
// plus a completion sink that publishes the result (the reduction point
// every consumer of C would depend on).
func (m *MMult) Build(kernels, unroll int) (*core.Program, error) {
	inst := grains(m.n, unroll)
	n := m.n
	cPar := m.cPar

	p := core.NewProgram("mmult")
	rowBytes := int64(n) * 8
	p.AddBuffer("A", int64(n)*rowBytes)
	p.AddBuffer("B", int64(n)*rowBytes)
	p.AddBuffer("C", int64(n)*rowBytes)
	blk := p.AddBlock()

	work := core.NewTemplate(1, "rows", func(ctx core.Context) {
		lo, hi := chunk(n, inst, int(ctx))
		m.multiplyRows(cPar, lo, hi)
	})
	work.Instances = core.Context(inst)
	work.Cost = func(ctx core.Context) int64 {
		lo, hi := chunk(n, inst, int(ctx))
		return m.rowCost(lo, hi)
	}
	work.Access = func(ctx core.Context) []core.MemRegion {
		lo, hi := chunk(n, inst, int(ctx))
		return m.rowRegions(lo, hi)
	}

	sink := core.NewTemplate(2, "done", func(core.Context) {})
	sink.Cost = func(core.Context) int64 { return 64 }
	work.Then(2, core.AllToOne{})
	blk.Add(work)
	blk.Add(sink)
	return p, nil
}

// SharedBuffers implements Job.
func (m *MMult) SharedBuffers() *cellsim.SharedVariableBuffer {
	svb := cellsim.NewSharedVariableBuffer()
	svb.Register("A", byteview.Float64s(m.a))
	svb.Register("B", byteview.Float64s(m.b))
	svb.Register("C", byteview.Float64s(m.cPar))
	return svb
}

// ResetOutput implements Job.
func (m *MMult) ResetOutput() {
	for i := range m.cPar {
		m.cPar[i] = 0
	}
}

// Verify implements Job: every C element is produced by one DThread
// running the sequential inner loop, so the match is bitwise.
func (m *MMult) Verify() error {
	if !m.refDone {
		m.RunSequential()
	}
	for i := range m.cRef {
		if m.cPar[i] != m.cRef[i] {
			return fmt.Errorf("MMULT: C[%d,%d] = %v, want %v", i/m.n, i%m.n, m.cPar[i], m.cRef[i])
		}
	}
	return nil
}
