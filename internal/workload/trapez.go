package workload

import (
	"fmt"
	"math"

	"tflux/internal/byteview"
	"tflux/internal/cellsim"
	"tflux/internal/core"
	"tflux/internal/hardsim"
)

// TRAPEZ: trapezoidal-rule integration of f(x) = 4/(1+x²) over [0,1]
// (whose exact value is π, making the result self-checking). The paper
// parallelizes it with no DThread dependencies other than the final
// reduction and near-zero data transfer, so it approaches ideal speedup
// on every platform (§6.1.2).
//
// The size parameter is the log2 of the interval count (Table 1: 19, 21,
// 23 on all platforms).

// trapezBaseGrains is the number of base grains the integration loop is
// split into; the unroll factor coarsens from here.
const trapezBaseGrains = 4096

// trapezCyclesPerInterval is the compute-cost model for the cycle
// simulator: one interval is a divide, two adds and a multiply.
const trapezCyclesPerInterval = 12

// Trapez is the TRAPEZ Job.
type Trapez struct {
	log2n int
	n     int

	ref      float64 // sequential result
	refDone  bool
	partials []float64 // parallel partial sums (one per instance at last Build)
	result   []float64 // 1-element buffer backing "result" (the parallel output)
}

// TrapezSpec returns the Table 1 entry for TRAPEZ.
func TrapezSpec() Spec {
	return Spec{
		Name:        "TRAPEZ",
		Source:      "kernel",
		Description: "Trapezoidal rule for integration",
		Sizes: func(Platform) ([3]int, bool) {
			return [3]int{19, 21, 23}, true
		},
		SizeLabel: func(p int) string { return fmt.Sprintf("2^%d", p) },
		Make:      func(p int) Job { return NewTrapez(p) },
	}
}

// NewTrapez builds a TRAPEZ job integrating over 2^log2n intervals.
func NewTrapez(log2n int) *Trapez {
	return &Trapez{log2n: log2n, n: 1 << log2n, result: make([]float64, 1)}
}

// Name implements Job.
func (t *Trapez) Name() string { return "TRAPEZ" }

func trapezF(x float64) float64 { return 4 / (1 + x*x) }

// integrate sums the trapezoid areas of intervals [lo, hi) of the n-way
// partition of [0,1]. Both the sequential baseline and each DThread run
// exactly this loop, so partial sums combine to the same schedule of
// additions whenever the chunk boundaries match.
func (t *Trapez) integrate(lo, hi int) float64 {
	h := 1.0 / float64(t.n)
	var s float64
	for i := lo; i < hi; i++ {
		x0 := float64(i) * h
		x1 := float64(i+1) * h
		s += (trapezF(x0) + trapezF(x1)) * h / 2
	}
	return s
}

// RunSequential implements Job.
func (t *Trapez) RunSequential() {
	t.ref = t.integrate(0, t.n)
	t.refDone = true
}

// SequentialSteps implements Job: one compute-bound step (TRAPEZ has no
// significant memory footprint).
func (t *Trapez) SequentialSteps() []hardsim.Step {
	return []hardsim.Step{{Cost: int64(t.n) * trapezCyclesPerInterval}}
}

// Build implements Job.
func (t *Trapez) Build(kernels, unroll int) (*core.Program, error) {
	inst := grains(trapezBaseGrains, unroll)
	t.partials = make([]float64, inst)
	partials := t.partials
	result := t.result
	n := t.n

	p := core.NewProgram("trapez")
	p.AddBuffer("partials", int64(inst)*8)
	p.AddBuffer("result", 8)
	b := p.AddBlock()

	work := core.NewTemplate(1, "integrate", func(ctx core.Context) {
		lo, hi := chunk(n, inst, int(ctx))
		partials[ctx] = t.integrate(lo, hi)
	})
	work.Instances = core.Context(inst)
	work.Cost = func(ctx core.Context) int64 {
		lo, hi := chunk(n, inst, int(ctx))
		return int64(hi-lo) * trapezCyclesPerInterval
	}
	work.Access = func(ctx core.Context) []core.MemRegion {
		return []core.MemRegion{region("partials", int64(ctx)*8, 8, true)}
	}

	reduce := core.NewTemplate(2, "reduce", func(core.Context) {
		var s float64
		for _, v := range partials {
			s += v
		}
		result[0] = s
	})
	reduce.Cost = func(core.Context) int64 { return int64(inst) * 4 }
	reduce.Access = func(core.Context) []core.MemRegion {
		return []core.MemRegion{
			region("partials", 0, int64(inst)*8, false),
			region("result", 0, 8, true),
		}
	}

	work.Then(2, core.AllToOne{})
	b.Add(work)
	b.Add(reduce)
	return p, nil
}

// SharedBuffers implements Job.
func (t *Trapez) SharedBuffers() *cellsim.SharedVariableBuffer {
	svb := cellsim.NewSharedVariableBuffer()
	svb.Register("partials", byteview.Float64s(t.partials))
	svb.Register("result", byteview.Float64s(t.result))
	return svb
}

// ResetOutput implements Job.
func (t *Trapez) ResetOutput() {
	for i := range t.partials {
		t.partials[i] = 0
	}
	t.result[0] = 0
}

// Verify implements Job. The parallel result is read from the declared
// "result" buffer (so it is valid on every platform, including the
// distributed runtime, where only declared buffers cross address spaces).
// Partial sums reassociate the addition order, so the comparison is to
// machine precision rather than bitwise, with π as a second witness.
func (t *Trapez) Verify() error {
	if !t.refDone {
		t.RunSequential()
	}
	par := t.result[0]
	if d := math.Abs(par - t.ref); d > 1e-9 {
		return fmt.Errorf("TRAPEZ: parallel %v vs sequential %v (|Δ|=%g)", par, t.ref, d)
	}
	if d := math.Abs(par - math.Pi); d > 1e-6 {
		return fmt.Errorf("TRAPEZ: result %v is not π", par)
	}
	return nil
}
