package workload

import (
	"fmt"
	"math"
	"math/cmplx"

	"tflux/internal/byteview"
	"tflux/internal/cellsim"
	"tflux/internal/core"
	"tflux/internal/hardsim"
)

// FFT: the NAS-style 2-D FFT over an n×n matrix of complex numbers,
// computed as independent row FFTs, then independent column FFTs, then a
// scaling pass. The phases parallelize perfectly inside themselves but
// carry an implicit all-to-all synchronization between them, which is what
// limits the benchmark's speedup in the paper (§6.1.2).
//
// The size parameter is n (Table 1: 32, 64, 128). The paper's Figure 7
// omits FFT, so the benchmark reports no Cell sizes.

// fftCyclesPerButterfly models one radix-2 butterfly (complex multiply and
// two adds) including loop overhead.
const fftCyclesPerButterfly = 14

// FFT is the FFT Job.
type FFT struct {
	n       int
	input   []complex128
	par     []complex128
	ref     []complex128
	refDone bool
}

// FFTSpec returns the Table 1 entry for FFT.
func FFTSpec() Spec {
	return Spec{
		Name:        "FFT",
		Source:      "NAS",
		Description: "FFT on a matrix of complex numbers",
		Sizes: func(pf Platform) ([3]int, bool) {
			if pf == Cell {
				return [3]int{}, false // not evaluated on Cell (Figure 7)
			}
			return [3]int{32, 64, 128}, true
		},
		SizeLabel: func(p int) string { return fmt.Sprintf("%d", p) },
		Make:      func(p int) Job { return NewFFT(p) },
	}
}

// NewFFT builds an FFT job over an n×n complex matrix (n a power of two).
func NewFFT(n int) *FFT {
	if n&(n-1) != 0 || n < 2 {
		panic("workload: FFT size must be a power of two >= 2")
	}
	f := &FFT{
		n:     n,
		input: make([]complex128, n*n),
		par:   make([]complex128, n*n),
		ref:   make([]complex128, n*n),
	}
	s := uint32(0x1234567)
	for i := range f.input {
		s = xorshift32(s)
		re := float64(s%2048)/1024 - 1
		s = xorshift32(s)
		im := float64(s%2048)/1024 - 1
		f.input[i] = complex(re, im)
	}
	return f
}

// Name implements Job.
func (f *FFT) Name() string { return "FFT" }

// fftInPlace runs an iterative radix-2 decimation-in-time FFT over v.
func fftInPlace(v []complex128) {
	n := len(v)
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			v[i], v[j] = v[j], v[i]
		}
		m := n >> 1
		for m >= 1 && j&m != 0 {
			j ^= m
			m >>= 1
		}
		j |= m
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for lo := 0; lo < n; lo += size {
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, step*float64(k)))
				a := v[lo+k]
				b := v[lo+k+half] * w
				v[lo+k] = a + b
				v[lo+k+half] = a - b
			}
		}
	}
}

// rowFFTs transforms rows [lo, hi) of dst in place.
func (f *FFT) rowFFTs(dst []complex128, lo, hi int) {
	for r := lo; r < hi; r++ {
		fftInPlace(dst[r*f.n : (r+1)*f.n])
	}
}

// colFFTs transforms columns [lo, hi) of dst in place.
func (f *FFT) colFFTs(dst []complex128, lo, hi int) {
	n := f.n
	col := make([]complex128, n)
	for c := lo; c < hi; c++ {
		for r := 0; r < n; r++ {
			col[r] = dst[r*n+c]
		}
		fftInPlace(col)
		for r := 0; r < n; r++ {
			dst[r*n+c] = col[r]
		}
	}
}

// scaleRows normalizes rows [lo, hi) by 1/n².
func (f *FFT) scaleRows(dst []complex128, lo, hi int) {
	inv := complex(1/float64(f.n*f.n), 0)
	for i := lo * f.n; i < hi*f.n; i++ {
		dst[i] *= inv
	}
}

// RunSequential implements Job.
func (f *FFT) RunSequential() {
	copy(f.ref, f.input)
	f.rowFFTs(f.ref, 0, f.n)
	f.colFFTs(f.ref, 0, f.n)
	f.scaleRows(f.ref, 0, f.n)
	f.refDone = true
}

// phaseCost models one phase over `lines` rows or columns.
func (f *FFT) phaseCost(lines int) int64 {
	return int64(lines) * int64(f.n) * int64(log2ceil(f.n)) * fftCyclesPerButterfly
}

// SequentialSteps implements Job.
func (f *FFT) SequentialSteps() []hardsim.Step {
	bytes := int64(f.n) * int64(f.n) * 16
	all := func(w bool) core.MemRegion { return region("data", 0, bytes, w) }
	return []hardsim.Step{
		{Cost: int64(f.n) * int64(f.n) * 4, Regions: []core.MemRegion{region("data", 0, bytes, true)}},
		{Cost: f.phaseCost(f.n), Regions: []core.MemRegion{all(false), all(true)}},
		{Cost: f.phaseCost(f.n), Regions: []core.MemRegion{all(false), all(true)}},
		{Cost: int64(f.n) * int64(f.n) * 2, Regions: []core.MemRegion{all(false), all(true)}},
	}
}

// colRegions returns the strided per-row regions a column block touches.
func (f *FFT) colRegions(lo, hi int, write bool) []core.MemRegion {
	n := f.n
	regs := make([]core.MemRegion, 0, n)
	for r := 0; r < n; r++ {
		regs = append(regs, region("data", int64(r*n+lo)*16, int64(hi-lo)*16, write))
	}
	return regs
}

// Build implements Job: load → row FFTs → column FFTs → scale, with
// barrier arcs between phases.
func (f *FFT) Build(kernels, unroll int) (*core.Program, error) {
	inst := grains(f.n, unroll)
	n := f.n
	par, input := f.par, f.input
	rowBytes := int64(n) * 16

	rowsOf := func(ctx core.Context) (int, int) { return chunk(n, inst, int(ctx)) }
	rowRegion := func(lo, hi int, write bool) core.MemRegion {
		return region("data", int64(lo)*rowBytes, int64(hi-lo)*rowBytes, write)
	}

	p := core.NewProgram("fft")
	p.AddBuffer("data", int64(n)*rowBytes)
	b := p.AddBlock()

	load := core.NewTemplate(1, "load", func(ctx core.Context) {
		lo, hi := rowsOf(ctx)
		copy(par[lo*n:hi*n], input[lo*n:hi*n])
	})
	load.Instances = core.Context(inst)
	load.Cost = func(ctx core.Context) int64 {
		lo, hi := rowsOf(ctx)
		return int64(hi-lo) * int64(n) * 4
	}
	load.Access = func(ctx core.Context) []core.MemRegion {
		lo, hi := rowsOf(ctx)
		return []core.MemRegion{rowRegion(lo, hi, true)}
	}

	rows := core.NewTemplate(2, "rowfft", func(ctx core.Context) {
		lo, hi := rowsOf(ctx)
		f.rowFFTs(par, lo, hi)
	})
	rows.Instances = core.Context(inst)
	rows.Cost = func(ctx core.Context) int64 {
		lo, hi := rowsOf(ctx)
		return f.phaseCost(hi - lo)
	}
	rows.Access = func(ctx core.Context) []core.MemRegion {
		lo, hi := rowsOf(ctx)
		return []core.MemRegion{rowRegion(lo, hi, false), rowRegion(lo, hi, true)}
	}

	cols := core.NewTemplate(3, "colfft", func(ctx core.Context) {
		lo, hi := rowsOf(ctx)
		f.colFFTs(par, lo, hi)
	})
	cols.Instances = core.Context(inst)
	cols.Cost = func(ctx core.Context) int64 {
		lo, hi := rowsOf(ctx)
		return f.phaseCost(hi - lo)
	}
	cols.Access = func(ctx core.Context) []core.MemRegion {
		lo, hi := rowsOf(ctx)
		regs := f.colRegions(lo, hi, false)
		return append(regs, f.colRegions(lo, hi, true)...)
	}

	scale := core.NewTemplate(4, "scale", func(ctx core.Context) {
		lo, hi := rowsOf(ctx)
		f.scaleRows(par, lo, hi)
	})
	scale.Instances = core.Context(inst)
	scale.Cost = func(ctx core.Context) int64 {
		lo, hi := rowsOf(ctx)
		return int64(hi-lo) * int64(n) * 2
	}
	scale.Access = func(ctx core.Context) []core.MemRegion {
		lo, hi := rowsOf(ctx)
		return []core.MemRegion{rowRegion(lo, hi, false), rowRegion(lo, hi, true)}
	}

	load.Then(2, core.OneToOne{})
	rows.Then(3, core.OneToAll{}) // column FFTs need every row: phase barrier
	cols.Then(4, core.OneToAll{}) // scaling needs every column: phase barrier
	b.Add(load)
	b.Add(rows)
	b.Add(cols)
	b.Add(scale)
	return p, nil
}

// SharedBuffers implements Job.
func (f *FFT) SharedBuffers() *cellsim.SharedVariableBuffer {
	svb := cellsim.NewSharedVariableBuffer()
	svb.Register("data", byteview.Complex128s(f.par))
	return svb
}

// ResetOutput implements Job.
func (f *FFT) ResetOutput() {
	for i := range f.par {
		f.par[i] = 0
	}
}

// Verify implements Job: identical per-element computation order gives a
// bitwise match.
func (f *FFT) Verify() error {
	if !f.refDone {
		f.RunSequential()
	}
	for i := range f.ref {
		if f.par[i] != f.ref[i] {
			return fmt.Errorf("FFT: element %d = %v, want %v", i, f.par[i], f.ref[i])
		}
	}
	return nil
}
