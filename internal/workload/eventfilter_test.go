package workload

import (
	"testing"

	"tflux/internal/rts"
	"tflux/internal/stream"
)

func TestEventFilterValidation(t *testing.T) {
	if _, err := NewEventFilter(6, 2, 1); err == nil {
		t.Fatal("window not a multiple of the fan accepted")
	}
	if _, err := NewEventFilter(0, 2, 1); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := NewEventFilter(8, 0, 1); err == nil {
		t.Fatal("zero slots accepted")
	}
}

func TestEventFilterReference(t *testing.T) {
	e, err := NewEventFilter(16, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	sum1, acc1 := e.Reference(5000)
	sum2, acc2 := e.Reference(5000)
	if sum1 != sum2 || acc1 != acc2 {
		t.Fatal("reference not deterministic")
	}
	if sum1 == 0 || acc1 == 0 {
		t.Fatal("degenerate reference")
	}
	// The filter keeps ~5/8 of events.
	if acc1 < 2500 || acc1 > 3750 {
		t.Fatalf("accepted %d of 5000, expected ≈5/8", acc1)
	}
	// A different seed must disagree (the checksum actually depends on
	// the payloads, not just the count).
	e2, _ := NewEventFilter(16, 2, 43)
	if s, _ := e2.Reference(5000); s == sum1 {
		t.Fatal("seed does not affect the checksum")
	}
}

// TestEventFilterEndToEnd streams an uneven event count (forcing a
// padded final window) through few slots and verifies the checksum
// against the sequential reference — the exactly-once contract.
func TestEventFilterEndToEnd(t *testing.T) {
	const n = 1000 // 62 full windows of 16 + an 8-event partial
	e, err := NewEventFilter(16, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rts.RunStream(e.Pipeline(), stream.NewCountSource(n, 0), stream.Options{Slots: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(n); err != nil {
		t.Fatal(err)
	}
	if e.Windows() != 63 || st.Windows != 63 {
		t.Fatalf("windows %d/%d, want 63", e.Windows(), st.Windows)
	}
	if st.Padded != 8 {
		t.Fatalf("padded %d, want 8", st.Padded)
	}
}
