package workload

import (
	"fmt"
	"sort"

	"tflux/internal/byteview"
	"tflux/internal/cellsim"
	"tflux/internal/core"
	"tflux/internal/hardsim"
)

// QSORT: sort an array of uint32 keys. Following §6.1.2, the DDM version
// has an initialization DThread (one CPU fills the array — the source of
// the paper's §6.2.2 cache-transfer trade-off on TFluxSoft), a leaf phase
// where each DThread sorts one chunk, and a two-level merge tree: level 1
// merges chunk pairs, a final DThread merges the level-1 runs. The final
// merge's serial cost is comparable to the sort phase, which is exactly
// what caps QSORT's speedup in the paper (≈7.5 on 27 nodes).
//
// The size parameter is the element count (Table 1: 10K/20K/50K simulated
// and native, 3K/6K/12K on Cell — larger inputs do not fit the SPE Local
// Store, §6.3).

// qsortBaseLeaves is the leaf count at unroll 1; unrolling halves the
// number of leaves (coarser sort chunks), floored at 4 so the merge tree
// keeps its two levels.
const qsortBaseLeaves = 64

const (
	// MiBench QSORT calls libc qsort() with a function-pointer comparator,
	// which is expensive per element on an in-order core.
	qsortCyclesPerCmp   = 24 // sort: comparison call + swaps per n·log n unit
	qsortCyclesPerMerge = 6  // merge: per element moved (streaming, branch-light)
)

// QSort is the QSORT Job.
type QSort struct {
	n       int
	input   []uint32 // filled by the init DThread (parallel) / directly (sequential)
	work    []uint32 // leaf-sorted chunks
	scratch []uint32 // level-1 merged runs
	sorted  []uint32 // final output
	ref     []uint32
	refDone bool

	leaves int // as of the last Build
}

// QSortSpec returns the Table 1 entry for QSORT.
func QSortSpec() Spec {
	return Spec{
		Name:        "QSORT",
		Source:      "MiBench",
		Description: "Array sorting",
		Sizes: func(pf Platform) ([3]int, bool) {
			if pf == Cell {
				return [3]int{3000, 6000, 12000}, true
			}
			return [3]int{10000, 20000, 50000}, true
		},
		SizeLabel: func(p int) string {
			if p%1000 == 0 {
				return fmt.Sprintf("%dK", p/1000)
			}
			return fmt.Sprintf("%d", p)
		},
		Make: func(p int) Job { return NewQSort(p) },
	}
}

// NewQSort builds a QSORT job over n keys.
func NewQSort(n int) *QSort {
	return &QSort{
		n:       n,
		input:   make([]uint32, n),
		work:    make([]uint32, n),
		scratch: make([]uint32, n),
		sorted:  make([]uint32, n),
		ref:     make([]uint32, n),
	}
}

// Name implements Job.
func (q *QSort) Name() string { return "QSORT" }

// fill writes the deterministic input keys.
func (q *QSort) fill(dst []uint32) {
	s := uint32(0xDEADBEEF)
	for i := range dst {
		s = xorshift32(s)
		dst[i] = s
	}
}

// RunSequential implements Job: generate and quicksort the whole array.
func (q *QSort) RunSequential() {
	q.fill(q.ref)
	sort.Slice(q.ref, func(i, j int) bool { return q.ref[i] < q.ref[j] })
	q.refDone = true
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// SequentialSteps implements Job.
func (q *QSort) SequentialSteps() []hardsim.Step {
	bytes := int64(q.n) * 4
	return []hardsim.Step{
		{ // initialization pass
			Cost:    int64(q.n) * 4,
			Regions: []core.MemRegion{region("input", 0, bytes, true)},
		},
		{ // n log n quicksort over the whole array
			Cost: int64(q.n) * int64(log2ceil(q.n)) * qsortCyclesPerCmp,
			Regions: []core.MemRegion{
				region("input", 0, bytes, false),
				region("input", 0, bytes, true),
			},
		},
	}
}

// leavesFor returns the leaf count for an unroll factor: unrolling merges
// base grains, and the result is forced to an even number ≥ 4 so the
// two-level tree is well formed.
func leavesFor(unroll int) int {
	l := grains(qsortBaseLeaves, unroll)
	if l < 4 {
		l = 4
	}
	if l%2 == 1 {
		l++
	}
	return l
}

// mergeRuns merges the sorted runs delimited by bounds (len(bounds)-1
// runs over src) into dst with a binary min-heap over the run heads, so a
// k-way merge costs n·log₂k comparisons — the final DThread's cost model
// assumes exactly this.
func mergeRuns(dst, src []uint32, bounds []int) {
	type head struct {
		val uint32
		pos int // next index in src
		end int
	}
	var heap []head
	less := func(a, b head) bool { return a.val < b.val }
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(heap) && less(heap[l], heap[smallest]) {
				smallest = l
			}
			if r < len(heap) && less(heap[r], heap[smallest]) {
				smallest = r
			}
			if smallest == i {
				return
			}
			heap[i], heap[smallest] = heap[smallest], heap[i]
			i = smallest
		}
	}
	for r := 0; r+1 < len(bounds); r++ {
		if bounds[r] < bounds[r+1] {
			heap = append(heap, head{val: src[bounds[r]], pos: bounds[r] + 1, end: bounds[r+1]})
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for out := 0; len(heap) > 0; out++ {
		h := &heap[0]
		dst[out] = h.val
		if h.pos < h.end {
			h.val = src[h.pos]
			h.pos++
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown(0)
	}
}

// Build implements Job.
func (q *QSort) Build(kernels, unroll int) (*core.Program, error) {
	leaves := leavesFor(unroll)
	q.leaves = leaves
	n := q.n
	input, work, scratch, sorted := q.input, q.work, q.scratch, q.sorted
	bytes := int64(n) * 4

	p := core.NewProgram("qsort")
	p.AddBuffer("input", bytes)
	p.AddBuffer("work", bytes)
	p.AddBuffer("scratch", bytes)
	p.AddBuffer("sorted", bytes)
	b := p.AddBlock()

	// Phase 0: one DThread initializes the array (paper §6.2.2).
	init := core.NewTemplate(1, "init", func(core.Context) { q.fill(input) })
	init.Cost = func(core.Context) int64 { return int64(n) * 4 }
	init.Access = func(core.Context) []core.MemRegion {
		return []core.MemRegion{region("input", 0, bytes, true)}
	}

	// Phase 1: each leaf sorts its chunk from input into work.
	leaf := core.NewTemplate(2, "sort", func(ctx core.Context) {
		lo, hi := chunk(n, leaves, int(ctx))
		c := work[lo:hi]
		copy(c, input[lo:hi])
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	})
	leaf.Instances = core.Context(leaves)
	leaf.Cost = func(ctx core.Context) int64 {
		lo, hi := chunk(n, leaves, int(ctx))
		m := hi - lo
		if m < 2 {
			return 8
		}
		return int64(m) * int64(log2ceil(m)) * qsortCyclesPerCmp
	}
	leaf.Access = func(ctx core.Context) []core.MemRegion {
		lo, hi := chunk(n, leaves, int(ctx))
		return []core.MemRegion{
			region("input", int64(lo)*4, int64(hi-lo)*4, false),
			region("work", int64(lo)*4, int64(hi-lo)*4, true),
		}
	}

	// Phase 2 (merge level 1): merge leaf pairs from work into scratch.
	pairs := leaves / 2
	merge1 := core.NewTemplate(3, "merge", func(ctx core.Context) {
		i := int(ctx)
		lo, _ := chunk(n, leaves, 2*i)
		mid, hi := chunk(n, leaves, 2*i+1)
		mergeRuns(scratch[lo:hi], work, []int{lo, mid, hi})
	})
	merge1.Instances = core.Context(pairs)
	merge1.Cost = func(ctx core.Context) int64 {
		i := int(ctx)
		lo, _ := chunk(n, leaves, 2*i)
		_, hi := chunk(n, leaves, 2*i+1)
		return int64(hi-lo) * qsortCyclesPerMerge
	}
	merge1.Access = func(ctx core.Context) []core.MemRegion {
		i := int(ctx)
		lo, _ := chunk(n, leaves, 2*i)
		_, hi := chunk(n, leaves, 2*i+1)
		return []core.MemRegion{
			region("work", int64(lo)*4, int64(hi-lo)*4, false),
			region("scratch", int64(lo)*4, int64(hi-lo)*4, true),
		}
	}

	// Phase 3 (merge level 2): one DThread merges the level-1 runs. This
	// serial tail is the benchmark's bottleneck, as in the paper.
	final := core.NewTemplate(4, "final", func(core.Context) {
		bounds := make([]int, pairs+1)
		for i := 0; i < pairs; i++ {
			lo, _ := chunk(n, leaves, 2*i)
			bounds[i] = lo
		}
		bounds[pairs] = n
		mergeRuns(sorted, scratch, bounds)
	})
	final.Cost = func(core.Context) int64 {
		// Heap-based k-way merge: n outputs at log2(pairs) comparisons.
		return int64(n) * int64(1+log2ceil(pairs)) * qsortCyclesPerMerge
	}
	final.Access = func(core.Context) []core.MemRegion {
		return []core.MemRegion{
			region("scratch", 0, bytes, false),
			region("sorted", 0, bytes, true),
		}
	}

	init.Then(2, core.OneToAll{})
	leaf.Then(3, core.Gather{Fan: 2})
	merge1.Then(4, core.AllToOne{})
	b.Add(init)
	b.Add(leaf)
	b.Add(merge1)
	b.Add(final)
	return p, nil
}

// SharedBuffers implements Job.
func (q *QSort) SharedBuffers() *cellsim.SharedVariableBuffer {
	svb := cellsim.NewSharedVariableBuffer()
	svb.Register("input", byteview.Uint32s(q.input))
	svb.Register("work", byteview.Uint32s(q.work))
	svb.Register("scratch", byteview.Uint32s(q.scratch))
	svb.Register("sorted", byteview.Uint32s(q.sorted))
	return svb
}

// ResetOutput implements Job.
func (q *QSort) ResetOutput() {
	for i := range q.sorted {
		q.input[i], q.work[i], q.scratch[i], q.sorted[i] = 0, 0, 0, 0
	}
}

// Verify implements Job: both versions fully sort the same input, so the
// outputs are identical arrays.
func (q *QSort) Verify() error {
	if !q.refDone {
		q.RunSequential()
	}
	for i := range q.ref {
		if q.sorted[i] != q.ref[i] {
			return fmt.Errorf("QSORT: sorted[%d] = %d, want %d", i, q.sorted[i], q.ref[i])
		}
	}
	return nil
}
