package workload

import (
	"fmt"

	"tflux/internal/core"
	"tflux/internal/stream"
)

// StreamSpec describes one built-in streaming workload, the streaming
// analogue of Spec: enough to build a fresh pipeline for verification
// (cmd/tfluxvet -stream) or execution.
type StreamSpec struct {
	Name        string
	Description string
	// Policies are the backpressure policies the workload supports; the
	// streaming verifier lints the pipeline under each (a workload whose
	// accumulators are not shed-tolerant lists only stream.Block).
	Policies []stream.Policy
	// Make builds fresh workload state for windows of w events over the
	// given slot budget and returns its pipeline. Zero w/slots select
	// the workload's defaults.
	Make func(w core.Context, slots int) (*stream.Pipeline, error)
}

// EventFilterSpec is the EVENTFILTER benchmark's streaming spec.
func EventFilterSpec() StreamSpec {
	return StreamSpec{
		Name:        "eventfilter",
		Description: "three-stage event filter (decode → filter → aggregate), checksum-verified",
		Policies:    []stream.Policy{stream.Block, stream.Shed},
		Make: func(w core.Context, slots int) (*stream.Pipeline, error) {
			if w == 0 {
				w = 64
			}
			if slots == 0 {
				slots = stream.DefaultSlots
			}
			e, err := NewEventFilter(w, slots, 1)
			if err != nil {
				return nil, err
			}
			return e.Pipeline(), nil
		},
	}
}

// StreamSuite returns every built-in streaming workload.
func StreamSuite() []StreamSpec {
	return []StreamSpec{EventFilterSpec()}
}

// StreamByName returns the streaming workload with the given name.
func StreamByName(name string) (StreamSpec, error) {
	for _, s := range StreamSuite() {
		if s.Name == name {
			return s, nil
		}
	}
	return StreamSpec{}, fmt.Errorf("workload: unknown streaming workload %q", name)
}
