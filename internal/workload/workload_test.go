package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tflux/internal/cellsim"
	"tflux/internal/hardsim"
	"tflux/internal/rts"
)

// smallJob builds each benchmark at a deliberately small size for tests.
func smallJobs() []Job {
	return []Job{
		NewTrapez(12),
		NewMMult(32),
		NewQSort(1500),
		NewSusan(64, 48),
		NewFFT(16),
	}
}

func TestSuiteMetadata(t *testing.T) {
	suite := Suite()
	if len(suite) != 5 {
		t.Fatalf("suite has %d benchmarks, want 5", len(suite))
	}
	wantNames := []string{"TRAPEZ", "MMULT", "QSORT", "SUSAN", "FFT"}
	for i, s := range suite {
		if s.Name != wantNames[i] {
			t.Fatalf("suite[%d] = %q, want %q", i, s.Name, wantNames[i])
		}
		for _, pf := range []Platform{Simulated, Native, Cell} {
			sizes, ok := s.Sizes(pf)
			if s.Name == "FFT" && pf == Cell {
				if ok {
					t.Fatal("FFT must not report Cell sizes (Figure 7 omits it)")
				}
				continue
			}
			if !ok {
				t.Fatalf("%s reports no sizes for %v", s.Name, pf)
			}
			for _, p := range sizes {
				if p <= 0 {
					t.Fatalf("%s %v has non-positive size param", s.Name, pf)
				}
				if s.SizeLabel(p) == "" {
					t.Fatalf("%s has empty size label", s.Name)
				}
			}
		}
	}
}

func TestTable1Sizes(t *testing.T) {
	mm, _ := ByName("MMULT")
	sim, _ := mm.Sizes(Simulated)
	if sim != [3]int{64, 128, 256} {
		t.Fatalf("MMULT simulated sizes = %v", sim)
	}
	nat, _ := mm.Sizes(Native)
	if nat != [3]int{64, 256, 1024} {
		t.Fatalf("MMULT native sizes = %v", nat)
	}
	qs, _ := ByName("QSORT")
	cell, _ := qs.Sizes(Cell)
	if cell != [3]int{3000, 6000, 12000} {
		t.Fatalf("QSORT cell sizes = %v", cell)
	}
	if qs.SizeLabel(12000) != "12K" {
		t.Fatalf("QSORT size label = %q", qs.SizeLabel(12000))
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestAllBenchmarksOnSoftRuntime(t *testing.T) {
	for _, job := range smallJobs() {
		for _, kernels := range []int{1, 3, 6} {
			for _, unroll := range []int{1, 7, 64} {
				job.ResetOutput()
				p, err := job.Build(kernels, unroll)
				if err != nil {
					t.Fatalf("%s: %v", job.Name(), err)
				}
				if err := p.Validate(); err != nil {
					t.Fatalf("%s k=%d u=%d: %v", job.Name(), kernels, unroll, err)
				}
				if _, err := rts.Run(p, rts.Options{Kernels: kernels}); err != nil {
					t.Fatalf("%s k=%d u=%d: %v", job.Name(), kernels, unroll, err)
				}
				if err := job.Verify(); err != nil {
					t.Fatalf("%s k=%d u=%d: %v", job.Name(), kernels, unroll, err)
				}
			}
		}
	}
}

func TestAllBenchmarksOnHardSim(t *testing.T) {
	for _, job := range smallJobs() {
		job.ResetOutput()
		p, err := job.Build(4, 4)
		if err != nil {
			t.Fatalf("%s: %v", job.Name(), err)
		}
		res, err := hardsim.Run(p, hardsim.Config{Cores: 4})
		if err != nil {
			t.Fatalf("%s: %v", job.Name(), err)
		}
		if err := job.Verify(); err != nil {
			t.Fatalf("%s: %v", job.Name(), err)
		}
		if res.Cycles <= 0 {
			t.Fatalf("%s: no cycles", job.Name())
		}
		seq, err := hardsim.Sequential(p.Buffers, job.SequentialSteps(), hardsim.Config{})
		if err != nil {
			t.Fatalf("%s sequential: %v", job.Name(), err)
		}
		if seq.Cycles <= 0 {
			t.Fatalf("%s: empty sequential baseline", job.Name())
		}
	}
}

func TestAllBenchmarksOnCellSim(t *testing.T) {
	for _, job := range smallJobs() {
		if job.Name() == "FFT" {
			continue // Figure 7 omits FFT on Cell
		}
		job.ResetOutput()
		p, err := job.Build(3, 16)
		if err != nil {
			t.Fatalf("%s: %v", job.Name(), err)
		}
		if _, err := cellsim.Run(p, job.SharedBuffers(), cellsim.Config{SPEs: 3}); err != nil {
			t.Fatalf("%s: %v", job.Name(), err)
		}
		if err := job.Verify(); err != nil {
			t.Fatalf("%s: %v", job.Name(), err)
		}
	}
}

func TestCellPaperSizesFitLocalStore(t *testing.T) {
	// Every benchmark at its largest Cell problem size must run within the
	// 256 KB Local Store at the paper's unroll factor (64).
	for _, spec := range Suite() {
		sizes, ok := spec.Sizes(Cell)
		if !ok {
			continue
		}
		job := spec.Make(sizes[Large])
		p, err := job.Build(6, 64)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if _, err := cellsim.Run(p, job.SharedBuffers(), cellsim.Config{SPEs: 2}); err != nil {
			t.Fatalf("%s at %s: %v", spec.Name, spec.SizeLabel(sizes[Large]), err)
		}
		if err := job.Verify(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
	}
}

func TestChunkTilesExactly(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw)%500 + 1
		k := int(kRaw)%20 + 1
		covered := 0
		for i := 0; i < k; i++ {
			lo, hi := chunk(n, k, i)
			if lo != covered || hi < lo {
				return false
			}
			covered = hi
		}
		return covered == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGrains(t *testing.T) {
	if grains(100, 1) != 100 || grains(100, 7) != 15 || grains(100, 200) != 1 || grains(100, 0) != 100 {
		t.Fatal("grains math wrong")
	}
}

func TestLeavesFor(t *testing.T) {
	for u := 1; u <= 64; u++ {
		l := leavesFor(u)
		if l < 4 || l%2 != 0 {
			t.Fatalf("leavesFor(%d) = %d: want even, >= 4", u, l)
		}
	}
	if leavesFor(1) != 64 {
		t.Fatalf("leavesFor(1) = %d, want 64", leavesFor(1))
	}
}

func TestMergeRunsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		runs := 2 + r.Intn(6)
		var src []uint32
		bounds := []int{0}
		for i := 0; i < runs; i++ {
			m := r.Intn(20)
			run := make([]uint32, m)
			for j := range run {
				run[j] = uint32(r.Intn(1000))
			}
			sort.Slice(run, func(a, b int) bool { return run[a] < run[b] })
			src = append(src, run...)
			bounds = append(bounds, len(src))
		}
		dst := make([]uint32, len(src))
		mergeRuns(dst, src, bounds)
		want := append([]uint32(nil), src...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("trial %d: dst[%d] = %d, want %d", trial, i, dst[i], want[i])
			}
		}
	}
}

func TestFFTAgainstNaiveDFT(t *testing.T) {
	const n = 16
	r := rand.New(rand.NewSource(9))
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(r.Float64()-0.5, r.Float64()-0.5)
	}
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / n
			s += v[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		want[k] = s
	}
	got := append([]complex128(nil), v...)
	fftInPlace(got)
	for k := range want {
		if d := got[k] - want[k]; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("bin %d: fft %v vs dft %v", k, got[k], want[k])
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Fatalf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTrapezConvergesToPi(t *testing.T) {
	j := NewTrapez(16)
	j.RunSequential()
	if math.Abs(j.ref-math.Pi) > 1e-7 {
		t.Fatalf("trapez(2^16) = %v", j.ref)
	}
}

func TestSequentialStepsHaveCosts(t *testing.T) {
	for _, job := range smallJobs() {
		steps := job.SequentialSteps()
		if len(steps) == 0 {
			t.Fatalf("%s: no sequential steps", job.Name())
		}
		for i, s := range steps {
			if s.Cost <= 0 {
				t.Fatalf("%s step %d: non-positive cost", job.Name(), i)
			}
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	// Verify must fail when the parallel output is wrong.
	m := NewMMult(8)
	m.RunSequential()
	m.cPar[5] = -1
	if m.Verify() == nil {
		t.Fatal("MMULT.Verify accepted corrupted output")
	}
	q := NewQSort(64)
	q.RunSequential()
	if q.Verify() == nil {
		t.Fatal("QSORT.Verify accepted unsorted output")
	}
	s := NewSusan(16, 16)
	s.RunSequential()
	s.final[3] = ^s.ref[3]
	if s.Verify() == nil {
		t.Fatal("SUSAN.Verify accepted corrupted output")
	}
	f := NewFFT(4)
	f.RunSequential()
	if f.Verify() == nil {
		t.Fatal("FFT.Verify accepted zero output")
	}
	tr := NewTrapez(8)
	tr.RunSequential()
	tr.result[0] = 1
	if tr.Verify() == nil {
		t.Fatal("TRAPEZ.Verify accepted wrong sum")
	}
}

func TestPlatformAndSizeClassStrings(t *testing.T) {
	if Simulated.String() != "simulated" || Native.String() != "native" || Cell.String() != "cell" {
		t.Fatal("platform names")
	}
	if Small.String() != "small" || Medium.String() != "medium" || Large.String() != "large" {
		t.Fatal("size class names")
	}
	if Platform(9).String() != "unknown" || SizeClass(9).String() != "unknown" {
		t.Fatal("unknown names")
	}
}
