package workload

import (
	"math"
	"testing"
	"testing/quick"
)

// --- TRAPEZ ---

// TestTrapezChunkingInvariance: partial sums over any chunking combine to
// the unchunked sum within floating-point reassociation tolerance — the
// property that makes min-over-unroll selection legitimate.
func TestTrapezChunkingInvariance(t *testing.T) {
	j := NewTrapez(14)
	whole := j.integrate(0, j.n)
	f := func(chunksRaw uint8) bool {
		k := int(chunksRaw)%50 + 1
		var sum float64
		for i := 0; i < k; i++ {
			lo, hi := chunk(j.n, k, i)
			sum += j.integrate(lo, hi)
		}
		return math.Abs(sum-whole) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrapezResetClearsState(t *testing.T) {
	j := NewTrapez(10)
	p, err := j.Build(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	for i := range j.partials {
		j.partials[i] = 42
	}
	j.result[0] = 42
	j.ResetOutput()
	for _, v := range j.partials {
		if v != 0 {
			t.Fatal("partials not cleared")
		}
	}
	if j.result[0] != 0 {
		t.Fatal("result not cleared")
	}
}

// --- MMULT ---

func TestMMultRowIndependence(t *testing.T) {
	// Computing rows in two disjoint calls equals one call over both.
	a := NewMMult(16)
	one := make([]float64, 16*16)
	two := make([]float64, 16*16)
	a.multiplyRows(one, 0, 16)
	a.multiplyRows(two, 0, 7)
	a.multiplyRows(two, 7, 16)
	for i := range one {
		if one[i] != two[i] {
			t.Fatalf("row-split changed element %d", i)
		}
	}
}

func TestMMultIdentity(t *testing.T) {
	m := NewMMult(8)
	// Overwrite B with the identity: C must equal A.
	for i := range m.b {
		m.b[i] = 0
	}
	for i := 0; i < 8; i++ {
		m.b[i*8+i] = 1
	}
	m.multiplyRows(m.cPar, 0, 8)
	for i := range m.a {
		if math.Abs(m.cPar[i]-m.a[i]) > 1e-12 {
			t.Fatalf("A×I ≠ A at %d", i)
		}
	}
}

func TestMMultRegionsCoverMatrices(t *testing.T) {
	m := NewMMult(64)
	regs := m.rowRegions(8, 16)
	if len(regs) != 3 {
		t.Fatalf("regions = %d", len(regs))
	}
	if regs[0].Buffer != "A" || regs[0].Offset != 8*64*8 || regs[0].Size != 8*64*8 {
		t.Fatalf("A region %+v", regs[0])
	}
	if regs[1].Buffer != "B" || regs[1].Offset != 0 || regs[1].Size != 64*64*8 {
		t.Fatalf("B region %+v", regs[1])
	}
	if !regs[1].Stream == (regs[1].Size > streamThreshold) {
		t.Fatalf("B streaming flag inconsistent: %+v", regs[1])
	}
	if !regs[2].Write {
		t.Fatalf("C region not a write: %+v", regs[2])
	}
}

// --- QSORT ---

func TestQSortDeterministicInput(t *testing.T) {
	a, b := NewQSort(256), NewQSort(256)
	a.fill(a.input)
	b.fill(b.input)
	for i := range a.input {
		if a.input[i] != b.input[i] {
			t.Fatal("input generation not deterministic")
		}
	}
}

func TestQSortLeafBoundariesMatchMergeTree(t *testing.T) {
	// The merge tree's bounds must tile the array for every unroll.
	for _, u := range []int{1, 3, 8, 64} {
		q := NewQSort(1000)
		if _, err := q.Build(4, u); err != nil {
			t.Fatalf("u=%d: %v", u, err)
		}
		l := q.leaves
		covered := 0
		for i := 0; i < l; i++ {
			lo, hi := chunk(q.n, l, i)
			if lo != covered {
				t.Fatalf("u=%d leaf %d starts at %d, want %d", u, i, lo, covered)
			}
			covered = hi
		}
		if covered != q.n {
			t.Fatalf("u=%d: leaves cover %d of %d", u, covered, q.n)
		}
	}
}

// --- SUSAN ---

func TestSusanBordersPassThrough(t *testing.T) {
	s := NewSusan(16, 12)
	s.initRows(s.img, 0, 12)
	s.smoothRows(s.img, s.smooth, 0, 12)
	for x := 0; x < 16; x++ {
		if s.smooth[x] != s.img[x] {
			t.Fatalf("top border pixel %d smoothed", x)
		}
		if s.smooth[11*16+x] != s.img[11*16+x] {
			t.Fatalf("bottom border pixel %d smoothed", x)
		}
	}
}

func TestSusanSmoothingIsAveraging(t *testing.T) {
	// A flat image must stay flat (weights cancel).
	s := NewSusan(8, 8)
	for i := range s.img {
		s.img[i] = 77
	}
	s.smoothRows(s.img, s.smooth, 0, 8)
	for i, v := range s.smooth {
		if v != 77 {
			t.Fatalf("flat image changed at %d: %d", i, v)
		}
	}
}

func TestSusanLUTMonotoneDecay(t *testing.T) {
	s := NewSusan(4, 4)
	// Similarity weight must not increase with brightness difference.
	for d := 0; d < 255; d++ {
		if s.lut[255+d+1] > s.lut[255+d] {
			t.Fatalf("LUT not monotone at diff %d", d)
		}
		if s.lut[255-d] != s.lut[255+d] {
			t.Fatalf("LUT not symmetric at diff %d", d)
		}
	}
	if s.lut[255] == 0 {
		t.Fatal("identical brightness has zero weight")
	}
}

func TestSusanRowChunkingInvariance(t *testing.T) {
	s := NewSusan(32, 24)
	s.initRows(s.img, 0, 24)
	whole := make([]byte, 32*24)
	s.smoothRows(s.img, whole, 0, 24)
	parts := make([]byte, 32*24)
	for _, split := range []int{1, 5, 11, 23} {
		for i := range parts {
			parts[i] = 0
		}
		s.smoothRows(s.img, parts, 0, split)
		s.smoothRows(s.img, parts, split, 24)
		for i := range whole {
			if parts[i] != whole[i] {
				t.Fatalf("split at %d changed pixel %d", split, i)
			}
		}
	}
}

// --- FFT ---

func TestFFTLinearity(t *testing.T) {
	// FFT(a+b) == FFT(a)+FFT(b) within tolerance.
	const n = 32
	a := make([]complex128, n)
	b := make([]complex128, n)
	s := uint32(77)
	for i := range a {
		s = xorshift32(s)
		a[i] = complex(float64(s%100)/50-1, 0)
		s = xorshift32(s)
		b[i] = complex(0, float64(s%100)/50-1)
	}
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = a[i] + b[i]
	}
	fftInPlace(a)
	fftInPlace(b)
	fftInPlace(sum)
	for i := range sum {
		d := sum[i] - (a[i] + b[i])
		if math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

func TestFFTParsevalEnergy(t *testing.T) {
	const n = 64
	v := make([]complex128, n)
	s := uint32(5)
	var timeEnergy float64
	for i := range v {
		s = xorshift32(s)
		v[i] = complex(float64(s%1000)/500-1, 0)
		timeEnergy += real(v[i])*real(v[i]) + imag(v[i])*imag(v[i])
	}
	fftInPlace(v)
	var freqEnergy float64
	for _, c := range v {
		freqEnergy += real(c)*real(c) + imag(c)*imag(c)
	}
	if math.Abs(freqEnergy/float64(n)-timeEnergy) > 1e-9*timeEnergy {
		t.Fatalf("Parseval violated: time %v vs freq/N %v", timeEnergy, freqEnergy/float64(n))
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two size")
		}
	}()
	NewFFT(12)
}

func TestFFTColumnChunkingInvariance(t *testing.T) {
	f1 := NewFFT(16)
	f2 := NewFFT(16)
	copy(f1.par, f1.input)
	copy(f2.par, f2.input)
	f1.colFFTs(f1.par, 0, 16)
	f2.colFFTs(f2.par, 0, 5)
	f2.colFFTs(f2.par, 5, 16)
	for i := range f1.par {
		if f1.par[i] != f2.par[i] {
			t.Fatalf("column split changed element %d", i)
		}
	}
}
