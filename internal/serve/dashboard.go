package serve

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// TenantSnap is one tenant's line in a Snapshot.
type TenantSnap struct {
	Name   string
	Weight int
	Queued int
	InUse  int // running + queued
}

// Snapshot is a point-in-time view of the daemon for dashboards.
type Snapshot struct {
	Uptime    time.Duration
	Submitted int64
	Accepted  int64
	Rejected  int64
	Completed int64
	Failed    int64
	Running   int
	Queued    int
	// ProgramsPerSec is completed programs over uptime.
	ProgramsPerSec float64
	// CacheHits and CacheMisses count admission-cache outcomes (a hit
	// skips resolve + lint + TSU table construction).
	CacheHits, CacheMisses int64
	// P50 and P99 are admission-to-completion latency quantiles
	// (linearly interpolated within buckets) from the serve.latency_ns
	// histogram.
	P50, P99 time.Duration
	// ArenaUsed / ArenaSize is the canonical-buffer arena occupancy.
	ArenaUsed, ArenaSize int64
	AliveNodes, Nodes    int
	Tenants              []TenantSnap
}

// Snapshot captures the daemon's current state.
func (s *Server) Snapshot() Snapshot {
	s.mu.Lock()
	snap := Snapshot{
		Uptime:     time.Since(s.start),
		Running:    s.running,
		Queued:     s.queued,
		ArenaUsed:  s.arena.size() - s.arena.available(),
		ArenaSize:  s.arena.size(),
		AliveNodes: s.fleet.AliveNodes(),
		Nodes:      s.fleet.Nodes(),
	}
	for name, ts := range s.tenants {
		snap.Tenants = append(snap.Tenants, TenantSnap{
			Name: name, Weight: ts.weight, Queued: len(ts.queue), InUse: ts.inUse,
		})
	}
	s.mu.Unlock()
	sort.Slice(snap.Tenants, func(i, j int) bool { return snap.Tenants[i].Name < snap.Tenants[j].Name })

	snap.Submitted = s.cSubmitted.Value()
	snap.Accepted = s.cAccepted.Value()
	snap.Rejected = s.cRejected.Value()
	snap.Completed = s.cCompleted.Value()
	snap.Failed = s.cFailed.Value()
	if sec := snap.Uptime.Seconds(); sec > 0 {
		snap.ProgramsPerSec = float64(snap.Completed) / sec
	}
	snap.CacheHits = s.cCacheHits.Value()
	snap.CacheMisses = s.cCacheMisses.Value()
	snap.P50 = time.Duration(s.latHist.Quantile(0.50))
	snap.P99 = time.Duration(s.latHist.Quantile(0.99))
	return snap
}

// WriteDashboard renders the snapshot as the daemon's one-screen
// status report.
func (s *Server) WriteDashboard(w io.Writer) error {
	snap := s.Snapshot()
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("tfluxd  up %v  fleet %d/%d nodes alive\n",
		snap.Uptime.Round(time.Second), snap.AliveNodes, snap.Nodes)
	pr("programs  submitted %d  accepted %d  rejected %d  completed %d  failed %d\n",
		snap.Submitted, snap.Accepted, snap.Rejected, snap.Completed, snap.Failed)
	pr("load      running %d  queued %d  arena %d/%d bytes\n",
		snap.Running, snap.Queued, snap.ArenaUsed, snap.ArenaSize)
	pr("latency   %.1f programs/sec  p50 %v  p99 %v (admission→completion)\n",
		snap.ProgramsPerSec, snap.P50, snap.P99)
	hitRate := 0.0
	if total := snap.CacheHits + snap.CacheMisses; total > 0 {
		hitRate = 100 * float64(snap.CacheHits) / float64(total)
	}
	pr("cache     %d hits  %d misses  %.1f%% hit rate (program admission)\n",
		snap.CacheHits, snap.CacheMisses, hitRate)
	for _, t := range snap.Tenants {
		pr("tenant %-12s weight %d  queued %d  in-flight %d\n",
			t.Name, t.Weight, t.Queued, t.InUse)
	}
	return err
}
