package serve

import (
	"bytes"
	"fmt"
	"testing"

	"tflux/internal/dist"
	"tflux/internal/obs"
)

// TestProgramCacheKeySoundness pins the correctness-first keying: specs
// differing in any field the resolver or builder reads — Param (which
// sizes the buffers), Kernels, Unroll — must resolve to distinct cache
// entries, and only a byte-identical respray of a seen spec may hit.
func TestProgramCacheKeySoundness(t *testing.T) {
	reg := obs.NewRegistry()
	tw := newTestWorkloads()
	d := startDaemon(t, 2, 2, tw, Options{Metrics: reg}, dist.Options{})
	defer func() {
		for i, err := range d.stop(t) {
			if err != nil {
				t.Errorf("node %d: %v", i, err)
			}
		}
	}()
	c := d.dial(t, "keys")
	defer c.Close() //nolint:errcheck

	hits := reg.Counter("serve.program_cache_hits")
	misses := reg.Counter("serve.program_cache_misses")

	run := func(spec dist.ProgramSpec, n int) []byte {
		t.Helper()
		in := make([]byte, n)
		for i := range in {
			in[i] = byte(i*7 + n)
		}
		p, err := c.Submit(spec, []dist.RegionData{{Buffer: "in", Offset: 0, Data: in, Size: int64(n)}})
		if err != nil {
			t.Fatal(err)
		}
		out, err := p.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if out.Err != "" {
			t.Fatalf("%+v failed: %s", spec, out.Err)
		}
		got := out.Buffer("out")
		wantScaled(t, in, got, fmt.Sprintf("%+v", spec))
		return got
	}

	// Each of these differs from the first in exactly one key field; all
	// must miss (distinct entries), and each must still compute the right
	// bytes for its own Param.
	distinct := []struct {
		spec dist.ProgramSpec
		n    int
	}{
		{dist.ProgramSpec{Name: "scale", Param: 24, Kernels: 4, Unroll: 1}, 24},
		{dist.ProgramSpec{Name: "scale", Param: 48, Kernels: 4, Unroll: 1}, 48}, // buffer size
		{dist.ProgramSpec{Name: "scale", Param: 24, Kernels: 2, Unroll: 1}, 24}, // kernels
		{dist.ProgramSpec{Name: "scale", Param: 24, Kernels: 4, Unroll: 2}, 24}, // unroll
	}
	for _, tc := range distinct {
		run(tc.spec, tc.n)
	}
	if h, m := hits.Value(), misses.Value(); h != 0 || m != int64(len(distinct)) {
		t.Fatalf("after %d distinct specs: hits/misses = %d/%d, want 0/%d", len(distinct), h, m, len(distinct))
	}

	// Resubmitting each is a pure hit — and still yields that spec's own
	// output bytes, not a collided neighbor's.
	for _, tc := range distinct {
		run(tc.spec, tc.n)
	}
	if h, m := hits.Value(), misses.Value(); h != int64(len(distinct)) || m != int64(len(distinct)) {
		t.Fatalf("after resubmits: hits/misses = %d/%d, want %d/%d", h, m, len(distinct), len(distinct))
	}

	// Explicit invalidation forces re-resolution.
	d.srv.InvalidateProgramCache()
	run(distinct[0].spec, distinct[0].n)
	if m := misses.Value(); m != int64(len(distinct))+1 {
		t.Fatalf("after invalidate: misses = %d, want %d", m, len(distinct)+1)
	}
}

// TestSubmitWarmPathAllocs pins the warm admission hot path at zero
// allocations: a resolve hit is a map lookup plus an LRU splice, so the
// cache can't silently regress to per-Submit allocation.
func TestSubmitWarmPathAllocs(t *testing.T) {
	tw := newTestWorkloads()
	d := startDaemon(t, 2, 2, tw, Options{}, dist.Options{})
	defer func() {
		for i, err := range d.stop(t) {
			if err != nil {
				t.Errorf("node %d: %v", i, err)
			}
		}
	}()

	spec := dist.ProgramSpec{Name: "scale", Param: 24, Kernels: 4, Unroll: 1}
	warm, reason := d.srv.resolveProgram(spec)
	if warm == nil {
		t.Fatalf("warming resolve rejected: %s", reason)
	}
	allocs := testing.AllocsPerRun(200, func() {
		ent, _ := d.srv.resolveProgram(spec)
		if ent != warm {
			t.Fatal("warm resolve returned a different entry")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm resolveProgram allocates %.1f times per hit, want 0", allocs)
	}
}

// TestWarmColdIdenticalOutputs runs the same submission stream against a
// cache-disabled daemon and a cache-enabled one: every program's output
// bytes must be identical — the cache is invisible except in speed.
func TestWarmColdIdenticalOutputs(t *testing.T) {
	const rounds = 12
	type result struct{ out []byte }
	collect := func(cacheCap int) ([]result, int64) {
		reg := obs.NewRegistry()
		tw := newTestWorkloads()
		d := startDaemon(t, 2, 2, tw, Options{ProgramCache: cacheCap, Metrics: reg}, dist.Options{})
		defer func() {
			for i, err := range d.stop(t) {
				if err != nil {
					t.Errorf("node %d: %v", i, err)
				}
			}
		}()
		c := d.dial(t, "twin")
		defer c.Close() //nolint:errcheck
		var rs []result
		for i := 0; i < rounds; i++ {
			in := make([]byte, 24)
			for j := range in {
				in[j] = byte(i*31 + j)
			}
			p, err := c.Submit(dist.ProgramSpec{Name: "scale", Param: 24},
				[]dist.RegionData{{Buffer: "in", Offset: 0, Data: in, Size: 24}})
			if err != nil {
				t.Fatal(err)
			}
			out, err := p.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if out.Err != "" {
				t.Fatalf("round %d failed: %s", i, out.Err)
			}
			rs = append(rs, result{out: append([]byte(nil), out.Buffer("out")...)})
		}
		return rs, reg.Counter("serve.program_cache_hits").Value()
	}

	cold, coldHits := collect(-1)
	warm, warmHits := collect(0) // default capacity
	if coldHits != 0 {
		t.Fatalf("cache-disabled run recorded %d hits", coldHits)
	}
	if warmHits == 0 {
		t.Fatal("cache-enabled run recorded no hits")
	}
	for i := range cold {
		if !bytes.Equal(cold[i].out, warm[i].out) {
			t.Fatalf("round %d: cold and warm outputs differ: %v vs %v", i, cold[i].out, warm[i].out)
		}
	}
}
