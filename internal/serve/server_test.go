package serve

import (
	"strings"
	"testing"

	"tflux/internal/dist"
)

// TestSubmitRoundTrip is the basic service contract: a client submits a
// spec plus input bytes, the daemon runs it over the fleet, and the
// Result carries the program's final buffers.
func TestSubmitRoundTrip(t *testing.T) {
	tw := newTestWorkloads()
	d := startDaemon(t, 2, 2, tw, Options{}, dist.Options{})
	defer d.stop(t)
	c := d.dial(t, "alice")
	defer c.Close() //nolint:errcheck

	in := make([]byte, 64)
	for i := range in {
		in[i] = byte(i * 5)
	}
	p, err := c.Submit(dist.ProgramSpec{Name: "scale", Param: 64},
		[]dist.RegionData{{Buffer: "in", Offset: 0, Data: in, Size: 64}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if out.Err != "" {
		t.Fatalf("program failed: %s", out.Err)
	}
	wantScaled(t, in, out.Buffer("out"), "round trip")
	if got := out.Buffer("in"); string(got) != string(in) {
		t.Fatalf("input buffer came back changed")
	}
	if out.Elapsed <= 0 {
		t.Fatalf("elapsed = %v", out.Elapsed)
	}
}

// TestAdmissionRejects walks the admission pipeline's rejection
// reasons: unresolvable spec, arena-impossible footprint, and invalid
// input regions. Each must come back as a Reject with a reason the
// client can act on, not a hang or a failed Result.
func TestAdmissionRejects(t *testing.T) {
	tw := newTestWorkloads()
	d := startDaemon(t, 1, 1, tw, Options{ArenaBytes: 4096}, dist.Options{})
	defer d.stop(t)
	c := d.dial(t, "alice")
	defer c.Close() //nolint:errcheck

	cases := []struct {
		name string
		spec dist.ProgramSpec
		regs []dist.RegionData
		want string
	}{
		{"unknown workload", dist.ProgramSpec{Name: "nosuch"}, nil, "resolve:"},
		{"arena overflow", dist.ProgramSpec{Name: "scale", Param: 4096}, nil, "arena capacity"},
		{"undeclared input", dist.ProgramSpec{Name: "scale", Param: 64},
			[]dist.RegionData{{Buffer: "bogus", Data: []byte{1}, Size: 1}}, "undeclared buffer"},
		{"oversized input", dist.ProgramSpec{Name: "scale", Param: 64},
			[]dist.RegionData{{Buffer: "in", Offset: 60, Data: make([]byte, 8), Size: 8}}, "outside declared size"},
		{"ref input", dist.ProgramSpec{Name: "scale", Param: 64},
			[]dist.RegionData{{Buffer: "in", Ref: true, Size: 8}}, "cache reference"},
	}
	for _, tc := range cases {
		p, err := c.Submit(tc.spec, tc.regs)
		if err != nil {
			t.Fatalf("%s: submit: %v", tc.name, err)
		}
		if _, err := p.Wait(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: want rejection containing %q, got %v", tc.name, tc.want, err)
		}
	}
	if snap := d.srv.Snapshot(); snap.Rejected != int64(len(cases)) || snap.Accepted != 0 {
		t.Fatalf("rejected/accepted = %d/%d, want %d/0", snap.Rejected, snap.Accepted, len(cases))
	}
}

// TestTenantQuota pins per-tenant admission control: a tenant at its
// in-flight cap is rejected while another tenant still gets through.
func TestTenantQuota(t *testing.T) {
	tw := newTestWorkloads()
	d := startDaemon(t, 1, 2, tw, Options{TenantQuota: 2, MaxQueue: 16}, dist.Options{})
	defer d.stop(t)
	alice := d.dial(t, "alice")
	defer alice.Close() //nolint:errcheck
	bob := d.dial(t, "bob")
	defer bob.Close() //nolint:errcheck

	spec := dist.ProgramSpec{Name: "gated", Param: 4}
	p1, err := alice.Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := alice.Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitSnapshot(t, d.srv, "two accepted", func(s Snapshot) bool { return s.Accepted == 2 })
	p3, err := alice.Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p3.Wait(); err == nil || !strings.Contains(err.Error(), "quota exceeded") {
		t.Fatalf("third alice submission: want quota rejection, got %v", err)
	}
	// Another tenant is not affected by alice's quota.
	pb, err := bob.Submit(dist.ProgramSpec{Name: "scale", Param: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tw.release()
	for _, p := range []*Pending{p1, p2, pb} {
		out, err := p.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if out.Err != "" {
			t.Fatalf("program failed: %s", out.Err)
		}
	}
}

// TestQueueBound pins the global bounded queue: with the fleet busy and
// the queue full, the next submission is rejected rather than buffered
// without limit.
func TestQueueBound(t *testing.T) {
	tw := newTestWorkloads()
	d := startDaemon(t, 1, 1, tw, Options{MaxPrograms: 1, MaxQueue: 1, TenantQuota: 16}, dist.Options{})
	defer d.stop(t)
	c := d.dial(t, "alice")
	defer c.Close() //nolint:errcheck

	spec := dist.ProgramSpec{Name: "gated", Param: 2}
	p1, err := c.Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitSnapshot(t, d.srv, "one running one queued", func(s Snapshot) bool {
		return s.Running == 1 && s.Queued == 1
	})
	p3, err := c.Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p3.Wait(); err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("want queue-full rejection, got %v", err)
	}
	tw.release()
	for _, p := range []*Pending{p1, p2} {
		if out, err := p.Wait(); err != nil || out.Err != "" {
			t.Fatalf("gated program: %v / %+v", err, out)
		}
	}
}

// TestWeightedFairness pins the per-tenant weighted round-robin: with
// the fleet saturated and both tenants' queues full, tenant A at
// weight 2 opens two programs for every one of tenant B's.
func TestWeightedFairness(t *testing.T) {
	tw := newTestWorkloads()
	d := startDaemon(t, 1, 1, tw, Options{
		MaxPrograms: 1,
		MaxQueue:    16,
		Weights:     map[string]int{"A": 2, "B": 1},
	}, dist.Options{})
	defer d.stop(t)
	a := d.dial(t, "A")
	defer a.Close() //nolint:errcheck
	b := d.dial(t, "B")
	defer b.Close() //nolint:errcheck
	gatekeeper := d.dial(t, "X")
	defer gatekeeper.Close() //nolint:errcheck

	// Pin the single run slot with a gated program, then queue A's and
	// B's work in a known order (polling between submissions: admission
	// order across connections is otherwise unordered).
	pg, err := gatekeeper.Submit(dist.ProgramSpec{Name: "gated", Param: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitSnapshot(t, d.srv, "gate running", func(s Snapshot) bool { return s.Running == 1 })

	var pend []*Pending
	submit := func(c *Client, tagIdx, n int) {
		t.Helper()
		p, err := c.Submit(dist.ProgramSpec{Name: "tagged", Param: tagIdx}, nil)
		if err != nil {
			t.Fatal(err)
		}
		pend = append(pend, p)
		waitSnapshot(t, d.srv, "queued", func(s Snapshot) bool { return s.Queued == n })
	}
	submit(a, 0, 1) // A1
	submit(a, 0, 2) // A2
	submit(a, 0, 3) // A3
	submit(a, 0, 4) // A4
	submit(b, 1, 5) // B1
	submit(b, 1, 6) // B2

	tw.release()
	if out, err := pg.Wait(); err != nil || out.Err != "" {
		t.Fatalf("gate program: %v / %+v", err, out)
	}
	for _, p := range pend {
		if out, err := p.Wait(); err != nil || out.Err != "" {
			t.Fatalf("tagged program: %v / %+v", err, out)
		}
	}
	got := strings.Join(tw.executionOrder(), "")
	if got != "AABAAB" {
		t.Fatalf("execution order = %q, want AABAAB (weight 2:1 round-robin)", got)
	}
}

// TestCloseDrains: Close stops admissions, fails queued programs with
// a shutdown Result, and waits for running ones.
func TestCloseDrains(t *testing.T) {
	tw := newTestWorkloads()
	d := startDaemon(t, 1, 1, tw, Options{MaxPrograms: 1, MaxQueue: 4}, dist.Options{})
	c := d.dial(t, "alice")
	defer c.Close() //nolint:errcheck

	p1, err := c.Submit(dist.ProgramSpec{Name: "gated", Param: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Submit(dist.ProgramSpec{Name: "scale", Param: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitSnapshot(t, d.srv, "one running one queued", func(s Snapshot) bool {
		return s.Running == 1 && s.Queued == 1
	})
	closed := make(chan struct{})
	go func() {
		tw.release()  // let the running program finish so Close can drain
		d.srv.Close() //nolint:errcheck
		close(closed)
	}()
	if out, err := p1.Wait(); err != nil || out.Err != "" {
		t.Fatalf("running program through drain: %v / %+v", err, out)
	}
	out2, err := p2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.Err, "shutting down") {
		t.Fatalf("queued program: want shutdown Result, got %+v", out2)
	}
	<-closed
	p3, err := c.Submit(dist.ProgramSpec{Name: "scale", Param: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p3.Wait(); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("post-close submission: want draining rejection, got %v", err)
	}
	d.ln.Close()  //nolint:errcheck
	d.flt.Close() //nolint:errcheck
	d.wait()
}

// TestDashboard sanity-checks the obs-backed status report.
func TestDashboard(t *testing.T) {
	tw := newTestWorkloads()
	d := startDaemon(t, 2, 1, tw, Options{}, dist.Options{})
	defer d.stop(t)
	c := d.dial(t, "alice")
	defer c.Close() //nolint:errcheck

	for i := 0; i < 3; i++ {
		p, err := c.Submit(dist.ProgramSpec{Name: "scale", Param: 16}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if out, err := p.Wait(); err != nil || out.Err != "" {
			t.Fatalf("program %d: %v / %+v", i, err, out)
		}
	}
	snap := d.srv.Snapshot()
	if snap.Completed != 3 || snap.Failed != 0 || snap.ProgramsPerSec <= 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap.P99 < snap.P50 || snap.P99 <= 0 {
		t.Fatalf("latency quantiles: p50=%v p99=%v", snap.P50, snap.P99)
	}
	var sb strings.Builder
	if err := d.srv.WriteDashboard(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tfluxd", "completed 3", "programs/sec", "tenant alice", "2/2 nodes alive"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("dashboard missing %q:\n%s", want, sb.String())
		}
	}
}
