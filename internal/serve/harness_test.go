package serve

import (
	"net"
	"sync"
	"testing"
	"time"

	"tflux/internal/cellsim"
	"tflux/internal/core"
	"tflux/internal/dist"
)

// testWorkloads is the resolver registry the serve tests run against:
//
//	"scale"  out[i] = in[i]*3 + 7 over Param bytes — the well-behaved
//	         tenant workload, input supplied by submission overlay
//	"gated"  scale whose last instance blocks on the harness gate — for
//	         pinning a program in the running state without starving the
//	         shared worker lanes
//	"evil"   declares only its own "out" but its Access model writes a
//	         "victim" buffer it never declared — the isolation attacker
//	         (its worker-side replica registers "victim" locally, so the
//	         export genuinely arrives at the coordinator)
type testWorkloads struct {
	mu    sync.Mutex
	gate  chan struct{}
	order []string // tenant tags recorded by "tagged" bodies, in execution order
}

func newTestWorkloads() *testWorkloads {
	return &testWorkloads{gate: make(chan struct{})}
}

func (tw *testWorkloads) release() { close(tw.gate) }

func (tw *testWorkloads) executionOrder() []string {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return append([]string(nil), tw.order...)
}

func scaleBody(in, out []byte) func(core.Context) {
	return func(ctx core.Context) {
		out[ctx] = in[ctx]*3 + 7
	}
}

func buildScale(n int, body func(core.Context)) (*core.Program, *cellsim.SharedVariableBuffer, []byte, []byte) {
	in := make([]byte, n)
	out := make([]byte, n)
	p := core.NewProgram("scale")
	p.AddBuffer("in", int64(n))
	p.AddBuffer("out", int64(n))
	b := p.AddBlock()
	work := core.NewTemplate(1, "scale", body)
	work.Instances = core.Context(n)
	work.Access = func(ctx core.Context) []core.MemRegion {
		i := int64(ctx)
		return []core.MemRegion{
			{Buffer: "in", Offset: i, Size: 1},
			{Buffer: "out", Offset: i, Size: 1, Write: true},
		}
	}
	b.Add(work)
	svb := cellsim.NewSharedVariableBuffer()
	svb.Register("in", in)
	svb.Register("out", out)
	return p, svb, in, out
}

func (tw *testWorkloads) resolver() dist.Resolver {
	return func(spec dist.ProgramSpec) (*core.Program, *cellsim.SharedVariableBuffer, error) {
		n := spec.Param
		if n <= 0 {
			n = 64
		}
		switch spec.Name {
		case "scale":
			p, svb, in, out := buildScale(n, nil)
			p.Blocks[0].Templates[0].Body = scaleBody(in, out)
			return p, svb, nil
		case "gated":
			// Blocks only the *last* instance on the gate: the program
			// cannot complete until release(), but it pins only one worker
			// lane, so other programs still execute concurrently.
			p, svb, in, out := buildScale(n, nil)
			last := core.Context(n - 1)
			p.Blocks[0].Templates[0].Body = func(ctx core.Context) {
				if ctx == last {
					<-tw.gate
				}
				out[ctx] = in[ctx]*3 + 7
			}
			return p, svb, nil
		case "tagged":
			// One-instance program whose body appends its tag (the
			// spec's Param picks the tag index; Unroll would be
			// normalized by admission) to the shared order log; used to
			// observe scheduling order.
			p, svb, _, out := buildScale(1, nil)
			tag := tagNames[spec.Param%len(tagNames)]
			p.Blocks[0].Templates[0].Body = func(ctx core.Context) {
				tw.mu.Lock()
				tw.order = append(tw.order, tag)
				tw.mu.Unlock()
				out[0] = 1
			}
			return p, svb, nil
		case "overflow":
			// Declares "out" as 8 bytes but its Access model (and its
			// worker replica) use 64 — the export overflows the
			// declared size.
			out := make([]byte, 64)
			p := core.NewProgram("overflow")
			p.AddBuffer("out", 8)
			b := p.AddBlock()
			t := core.NewTemplate(1, "overflow", func(core.Context) {
				for i := range out {
					out[i] = 0xAB
				}
			})
			t.Instances = 1
			t.Access = func(core.Context) []core.MemRegion {
				return []core.MemRegion{{Buffer: "out", Offset: 0, Size: 64, Write: true}}
			}
			b.Add(t)
			svb := cellsim.NewSharedVariableBuffer()
			svb.Register("out", out)
			return p, svb, nil
		case "evil":
			out := make([]byte, 64)
			victim := make([]byte, 64)
			p := core.NewProgram("evil")
			p.AddBuffer("out", 64)
			b := p.AddBlock()
			t := core.NewTemplate(1, "evil", func(core.Context) {
				for i := range victim {
					victim[i] = 0xEE
				}
			})
			t.Instances = 1
			t.Access = func(core.Context) []core.MemRegion {
				return []core.MemRegion{
					{Buffer: "victim", Offset: 0, Size: 64, Write: true},
					{Buffer: "out", Offset: 0, Size: 64, Write: true},
				}
			}
			b.Add(t)
			svb := cellsim.NewSharedVariableBuffer()
			svb.Register("out", out)
			svb.Register("victim", victim)
			return p, svb, nil
		}
		return WorkloadResolver()(spec)
	}
}

var tagNames = []string{"A", "B", "C", "D"}

// daemon is one in-process tfluxd: loopback fleet, server, listener.
type daemon struct {
	srv  *Server
	ln   net.Listener
	flt  *dist.Fleet
	wait func() []error
}

// startDaemon spins up a complete in-process daemon. Worker errors
// from deliberately severed nodes are the caller's to filter.
func startDaemon(t *testing.T, nodes, kernelsPerNode int, tw *testWorkloads, opt Options, distOpt dist.Options) *daemon {
	t.Helper()
	// Workers and the daemon resolve through the same registry — the
	// spec-resolution model the service layer is built on. A custom
	// opt.Resolver is therefore shared with the worker side too.
	res := opt.Resolver
	if res == nil {
		res = tw.resolver()
	}
	flt, wait, err := dist.NewLocalFleet(nodes, kernelsPerNode, res, distOpt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Resolver = res
	srv, err := New(flt, opt)
	if err != nil {
		flt.Close() //nolint:errcheck
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		flt.Close() //nolint:errcheck
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // returns when ln closes
	return &daemon{srv: srv, ln: ln, flt: flt, wait: wait}
}

func (d *daemon) stop(t *testing.T) []error {
	t.Helper()
	d.ln.Close()  //nolint:errcheck
	d.srv.Close() //nolint:errcheck
	d.flt.Close() //nolint:errcheck
	return d.wait()
}

func (d *daemon) dial(t *testing.T, tenant string) *Client {
	t.Helper()
	c, err := Dial(d.ln.Addr().String(), tenant)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// waitSnapshot polls until cond holds or the deadline passes.
func waitSnapshot(t *testing.T, s *Server, what string, cond func(Snapshot) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond(s.Snapshot()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; snapshot: %+v", what, s.Snapshot())
}

// wantScaled checks out = in*3+7 byte for byte.
func wantScaled(t *testing.T, in, out []byte, what string) {
	t.Helper()
	if len(out) != len(in) {
		t.Fatalf("%s: out is %d bytes, want %d", what, len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i]*3+7 {
			t.Fatalf("%s: out[%d] = %d, want %d (in=%d)", what, i, out[i], in[i]*3+7, in[i])
		}
	}
}
