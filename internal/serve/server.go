package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tflux/internal/cellsim"
	"tflux/internal/core"
	"tflux/internal/ddmlint"
	"tflux/internal/dist"
	"tflux/internal/obs"
	"tflux/internal/tsu"
)

// Options tunes the daemon. Zero values select the defaults.
type Options struct {
	// Resolver turns submitted specs into coordinator-side programs and
	// their input buffers. Required. It must agree with the resolver the
	// fleet's workers run, or replicas will diverge.
	Resolver dist.Resolver
	// MaxPrograms caps concurrently running programs — the declared
	// capacity admissions are controlled against. Default 2× the
	// fleet's node count.
	MaxPrograms int
	// MaxQueue caps admitted-but-not-yet-running programs across all
	// tenants; a submission past it is rejected. Default 64.
	MaxQueue int
	// TenantQuota caps one tenant's running+queued programs. Default
	// MaxQueue (i.e. effectively the global bound).
	TenantQuota int
	// ArenaBytes sizes the canonical-buffer arena every running
	// program's coordinator-side buffers are carved from. A program
	// whose declared buffers cannot fit even an empty arena is rejected
	// outright; one that merely doesn't fit *now* waits in the queue.
	// Default 64 MiB.
	ArenaBytes int64
	// Weights sets per-tenant scheduling weights (default 1 each): a
	// tenant with weight w gets w queue slots per round of the
	// weighted round-robin, and its programs inherit w as their
	// dispatch weight inside the fleet.
	Weights map[string]int
	// DisableLint skips the ddmlint admission gate. For tests proving
	// the runtime guards hold without it.
	DisableLint bool
	// ProgramCache caps the admission cache: resolved program identities
	// (spec → built program, lint verdict, frozen TSU tables, wire ref)
	// memoized across submissions, so a warm Submit skips Build + lint
	// and its sessions skip TSU table construction and worker replica
	// builds. 0 selects 64 entries; negative disables caching (every
	// submission resolves from scratch, protocol falls back to full-spec
	// opens).
	ProgramCache int
	// WriteTimeout bounds each client-bound frame write. Default 10s.
	WriteTimeout time.Duration

	// Metrics receives serve.* counters, gauges and the admission-to-
	// completion latency histogram; when nil a private registry is
	// created (the dashboard needs one). Sink, when set, receives
	// ServeAdmit/ServeReject/ServeResult events.
	Metrics *obs.Registry
	Sink    obs.Sink
}

func (o Options) withDefaults(fleetNodes int) Options {
	if o.MaxPrograms <= 0 {
		o.MaxPrograms = 2 * fleetNodes
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.TenantQuota <= 0 {
		o.TenantQuota = o.MaxQueue
	}
	if o.ArenaBytes <= 0 {
		o.ArenaBytes = 64 << 20
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.ProgramCache == 0 {
		o.ProgramCache = 64
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// program is one admitted submission moving through the daemon.
type program struct {
	id        uint32
	seq       uint64
	tenant    string
	spec      dist.ProgramSpec
	prog      *core.Program
	src       *cellsim.SharedVariableBuffer // resolver's buffers (inputs)
	hash      uint64                        // content address (0: cache disabled)
	tables    *tsu.Tables                   // frozen TSU tables (nil: cache disabled)
	overlay   []dist.RegionData             // client-supplied input regions
	ob        *outbox
	submitted time.Time
	allocs    []alloc // arena carvings, set when the program opens
	svb       *cellsim.SharedVariableBuffer
}

type alloc struct {
	off, size int64
}

// tenantState is one tenant's admission bookkeeping.
type tenantState struct {
	weight int
	credit int // remaining WRR credits this round
	queue  []*program
	inUse  int // running + queued
	qGauge *obs.Gauge
}

// Server is the tfluxd daemon core: admission control, per-tenant fair
// scheduling, and result delivery over one shared Fleet.
type Server struct {
	fleet *dist.Fleet
	opt   Options

	mu      sync.Mutex
	cond    *sync.Cond // signaled when running drops / queue drains
	closed  bool
	tenants map[string]*tenantState
	rr      []string // tenants with non-empty queues, WRR order
	queued  int
	running int
	nextID  uint32
	arena   *arena
	start   time.Time

	cache *programCache // nil when Options.ProgramCache < 0

	cSubmitted   *obs.Counter
	cAccepted    *obs.Counter
	cRejected    *obs.Counter
	cCompleted   *obs.Counter
	cFailed      *obs.Counter
	cCacheHits   *obs.Counter
	cCacheMisses *obs.Counter
	latHist      *obs.Histogram
	gRunning     *obs.Gauge
	gArena       *obs.Gauge
}

// New builds a Server over an already-handshaked fleet and starts the
// fleet's background loop. The caller keeps ownership of the fleet and
// closes it after Server.Close.
func New(fleet *dist.Fleet, opt Options) (*Server, error) {
	if opt.Resolver == nil {
		return nil, errors.New("serve: Options.Resolver is required")
	}
	opt = opt.withDefaults(fleet.Nodes())
	s := &Server{
		fleet:   fleet,
		opt:     opt,
		tenants: make(map[string]*tenantState),
		arena:   newArena(opt.ArenaBytes),
		start:   time.Now(),
		nextID:  1,

		cSubmitted:   opt.Metrics.Counter("serve.submitted"),
		cAccepted:    opt.Metrics.Counter("serve.accepted"),
		cRejected:    opt.Metrics.Counter("serve.rejected"),
		cCompleted:   opt.Metrics.Counter("serve.completed"),
		cFailed:      opt.Metrics.Counter("serve.failed"),
		cCacheHits:   opt.Metrics.Counter("serve.program_cache_hits"),
		cCacheMisses: opt.Metrics.Counter("serve.program_cache_misses"),
		latHist:      opt.Metrics.Histogram("serve.latency_ns", obs.LatencyBuckets),
		gRunning:     opt.Metrics.Gauge("serve.running"),
		gArena:       opt.Metrics.Gauge("serve.arena_used"),
	}
	if opt.ProgramCache > 0 {
		s.cache = newProgramCache(opt.ProgramCache)
	}
	s.cond = sync.NewCond(&s.mu)
	if opt.Sink != nil {
		opt.Sink.Begin()
	}
	fleet.Start()
	return s, nil
}

func (s *Server) tenant(name string) *tenantState {
	ts := s.tenants[name]
	if ts == nil {
		w := s.opt.Weights[name]
		if w < 1 {
			w = 1
		}
		ts = &tenantState{
			weight: w,
			credit: w,
			qGauge: s.opt.Metrics.Gauge("serve.queue." + name),
		}
		s.tenants[name] = ts
	}
	return ts
}

// Serve accepts client connections until the listener closes, running
// each connection's protocol loop in its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(conn) //nolint:errcheck // per-client errors end that client only
	}
}

// ServeConn runs one client connection: it reads Submit frames and
// writes Accept/Reject immediately and Result frames as programs
// finish. It returns when the client disconnects; programs the client
// submitted keep running, their results dropped.
func (s *Server) ServeConn(conn net.Conn) error {
	sc := dist.NewServiceConn(conn)
	sc.SetWriteTimeout(s.opt.WriteTimeout)
	ob := newOutbox(sc)
	defer ob.close()
	for {
		f, err := sc.Recv()
		if err != nil {
			return err
		}
		if f.Submit == nil {
			return fmt.Errorf("serve: unexpected client frame")
		}
		s.submit(ob, f.Submit)
	}
}

// submit runs the admission pipeline for one submission: resolve the
// spec, gate it through ddmlint, check it can ever fit the arena, then
// take the admission lock for the capacity/quota/queue decision. The
// Accept or Reject frame is enqueued before the lock drops, so a
// program's Accept always precedes its Result on the wire.
func (s *Server) submit(ob *outbox, sub *dist.Submit) {
	s.cSubmitted.Inc()
	reject := func(reason string) {
		s.cRejected.Inc()
		s.event(obs.ServeReject, sub.Tenant+"/"+sub.Spec.Name+": "+reason, 0)
		ob.reject(sub.Seq, reason)
	}

	spec := sub.Spec
	if spec.Kernels <= 0 {
		spec.Kernels = s.fleet.Kernels()
	}
	if spec.Unroll <= 0 {
		spec.Unroll = 1
	}
	ent, reason := s.resolveProgram(spec)
	if ent == nil {
		reject(reason)
		return
	}
	prog := ent.prog
	if ent.need > s.opt.ArenaBytes {
		reject(fmt.Sprintf("program needs %d buffer bytes, arena capacity is %d", ent.need, s.opt.ArenaBytes))
		return
	}
	// The client's input regions must land inside the program's declared
	// buffers — per-submission state, checked on hits and misses alike.
	for i := range sub.Regions {
		rd := &sub.Regions[i]
		if rd.Ref {
			reject(fmt.Sprintf("input region %q is a cache reference", rd.Buffer))
			return
		}
		var decl int64 = -1
		for _, b := range prog.Buffers {
			if b.Name == rd.Buffer {
				decl = b.Size
				break
			}
		}
		if decl < 0 {
			reject(fmt.Sprintf("input region names undeclared buffer %q", rd.Buffer))
			return
		}
		if rd.Offset < 0 || rd.Offset+int64(len(rd.Data)) > decl {
			reject(fmt.Sprintf("input region %q [%d,+%d) outside declared size %d", rd.Buffer, rd.Offset, len(rd.Data), decl))
			return
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		reject("daemon draining")
		return
	}
	if s.fleet.AliveNodes() == 0 {
		s.mu.Unlock()
		reject("no live worker nodes")
		return
	}
	ts := s.tenant(sub.Tenant)
	if ts.inUse >= s.opt.TenantQuota {
		s.mu.Unlock()
		reject(fmt.Sprintf("tenant %q quota exceeded (%d programs in flight)", sub.Tenant, s.opt.TenantQuota))
		return
	}
	if s.queued >= s.opt.MaxQueue {
		s.mu.Unlock()
		reject(fmt.Sprintf("admission queue full (%d)", s.opt.MaxQueue))
		return
	}
	p := &program{
		id:        s.nextID,
		seq:       sub.Seq,
		tenant:    sub.Tenant,
		spec:      spec,
		prog:      prog,
		src:       ent.src,
		hash:      ent.hash,
		tables:    ent.tables,
		overlay:   sub.Regions,
		ob:        ob,
		submitted: time.Now(),
	}
	s.nextID++
	ts.inUse++
	if len(ts.queue) == 0 {
		s.rr = append(s.rr, sub.Tenant)
	}
	ts.queue = append(ts.queue, p)
	s.queued++
	ts.qGauge.Set(int64(len(ts.queue)))
	s.cAccepted.Inc()
	s.event(obs.ServeAdmit, sub.Tenant+"/"+spec.Name, 0)
	ob.accept(sub.Seq, p.id)
	s.schedule()
	s.mu.Unlock()
}

// resolveProgram returns the admission-cache entry for spec, resolving,
// linting and building it on a miss. A non-nil entry means the program
// passed every per-identity gate (resolve, lint/validate, buffer-fit);
// a nil entry carries the rejection reason. The hit path is one map
// lookup plus an LRU splice — no allocation (TestSubmitWarmPathAllocs).
func (s *Server) resolveProgram(spec dist.ProgramSpec) (*cacheEntry, string) {
	key := specKey{name: spec.Name, param: spec.Param, kernels: spec.Kernels, unroll: spec.Unroll}
	if s.cache != nil {
		if ent := s.cache.get(key); ent != nil {
			s.cCacheHits.Inc()
			return ent, ""
		}
	}
	prog, src, err := s.opt.Resolver(spec)
	if err != nil {
		return nil, fmt.Sprintf("resolve: %v", err)
	}
	if prog == nil {
		return nil, "resolve: resolver returned nil program"
	}
	if !s.opt.DisableLint {
		if err := ddmlint.Admit(prog); err != nil {
			return nil, err.Error()
		}
	} else if err := prog.Validate(); err != nil {
		return nil, fmt.Sprintf("validate: %v", err)
	}
	// The program's namespace is its declared buffers: the resolver must
	// populate each (they seed the canonical copies) and the total must
	// fit the arena.
	var need int64
	for _, b := range prog.Buffers {
		if got := src.Bytes(b.Name); int64(len(got)) < b.Size {
			return nil, fmt.Sprintf("resolver registered buffer %q with %d bytes, program declares %d", b.Name, len(got), b.Size)
		}
		need += alignUp(b.Size)
	}
	ent := &cacheEntry{key: key, prog: prog, src: src, need: need}
	if s.cache != nil {
		s.cCacheMisses.Inc()
		ent.hash = spec.Hash()
		// Frozen TSU tables let every session of this program skip table
		// construction; a build failure (e.g. a program the TSU rejects at
		// open) just leaves tables nil and the fleet falls back.
		ent.tables, _ = tsu.NewTables(prog, s.fleet.Kernels(), tsu.Config{})
		s.cache.put(ent)
	}
	return ent, ""
}

// InvalidateProgramCache empties the admission cache, forcing the next
// submission of every spec to re-resolve and re-lint. Use after the
// resolver's behavior changes (new program registry contents, changed
// builders). No-op when caching is disabled.
func (s *Server) InvalidateProgramCache() {
	if s.cache != nil {
		s.cache.invalidate()
	}
}

// schedule opens queued programs while capacity, arena space and the
// weighted round-robin allow. Callers hold s.mu.
//
// The WRR walks the rotation of tenants with queued work: the front
// tenant spends one credit per opened program and rotates to the back
// when its credits run out, so a tenant with weight w gets w openings
// per round regardless of how deep its queue is. A tenant whose head
// program doesn't fit the arena right now is skipped without spending
// credit; when no tenant's head fits, scheduling waits for a release.
func (s *Server) schedule() {
	for s.running < s.opt.MaxPrograms && len(s.rr) > 0 {
		opened := false
		for i := 0; i < len(s.rr); i++ {
			ts := s.tenants[s.rr[i]]
			p := ts.queue[0]
			allocs, svb, ok := s.carve(p.prog)
			if !ok {
				continue
			}
			p.allocs, p.svb = allocs, svb
			ts.queue = ts.queue[1:]
			s.queued--
			ts.qGauge.Set(int64(len(ts.queue)))
			if len(ts.queue) == 0 {
				s.rr = append(s.rr[:i], s.rr[i+1:]...)
			} else if i == 0 {
				ts.credit--
				if ts.credit <= 0 {
					ts.credit = ts.weight
					s.rr = append(s.rr[1:], s.rr[0])
				}
			}
			s.open(p)
			opened = true
			break
		}
		if !opened {
			return // arena full: a finishing program will re-kick
		}
	}
}

// carve allocates the program's declared buffers from the arena and
// builds its private SharedVariableBuffer over the carvings, seeding
// each from the resolver's source bytes. Each buffer is a capped
// subslice of its allocation, so no access through this namespace can
// reach another program's memory — isolation by construction, with the
// admission lint and the fleet's byzantine checks as the layers above.
func (s *Server) carve(prog *core.Program) ([]alloc, *cellsim.SharedVariableBuffer, bool) {
	allocs := make([]alloc, 0, len(prog.Buffers))
	svb := cellsim.NewSharedVariableBuffer()
	for _, decl := range prog.Buffers {
		b, off, ok := s.arena.alloc(decl.Size)
		if !ok {
			for _, a := range allocs {
				s.arena.release(a.off, a.size)
			}
			return nil, nil, false
		}
		allocs = append(allocs, alloc{off, decl.Size})
		svb.Register(decl.Name, b[:decl.Size:decl.Size])
	}
	s.gArena.Set(s.arena.size() - s.arena.available())
	return allocs, svb, true
}

// open seeds the program's canonical buffers, applies the client's
// input overlay and hands the session to the fleet. Callers hold s.mu.
func (s *Server) open(p *program) {
	for _, decl := range p.prog.Buffers {
		copy(p.svb.Bytes(decl.Name), p.src.Bytes(decl.Name))
	}
	for i := range p.overlay {
		rd := &p.overlay[i]
		copy(p.svb.Bytes(rd.Buffer)[rd.Offset:], rd.Data)
	}
	s.running++
	s.gRunning.Set(int64(s.running))
	ts := s.tenants[p.tenant]
	err := s.fleet.Open(p.id, dist.OpenReq{
		Prog:   p.prog,
		SVB:    p.svb,
		Spec:   p.spec,
		Hash:   p.hash,
		Tables: p.tables,
		Weight: ts.weight,
		// OnDone runs on the fleet's event loop and must not block;
		// result assembly takes the admission lock, so hop goroutines.
		OnDone: func(st *dist.Stats, err error) { go s.finish(p, st, err) },
	})
	if err != nil {
		go s.finish(p, nil, err)
	}
}

// finish assembles and delivers one finished program's Result, returns
// its arena carvings, and re-kicks the scheduler.
func (s *Server) finish(p *program, st *dist.Stats, runErr error) {
	res := &dist.Result{Prog: p.id}
	if runErr != nil {
		res.Err = runErr.Error()
	}
	if st != nil {
		res.ElapsedNS = uint64(st.Elapsed.Nanoseconds())
		res.Failovers = uint64(st.Failovers)
		res.Retries = uint64(st.Retries)
	}

	s.mu.Lock()
	if runErr == nil {
		// Copy the final bytes out before the arena reuses them.
		for _, decl := range p.prog.Buffers {
			data := append([]byte(nil), p.svb.Bytes(decl.Name)...)
			res.Regions = append(res.Regions, dist.RegionData{
				Buffer: decl.Name, Offset: 0, Data: data, Size: int64(len(data)),
			})
		}
	}
	for _, a := range p.allocs {
		s.arena.release(a.off, a.size)
	}
	p.allocs, p.svb = nil, nil
	s.gArena.Set(s.arena.size() - s.arena.available())
	s.running--
	s.gRunning.Set(int64(s.running))
	s.tenants[p.tenant].inUse--
	lat := time.Since(p.submitted)
	s.schedule()
	s.cond.Broadcast()
	s.mu.Unlock()

	if runErr != nil {
		s.cFailed.Inc()
	} else {
		s.cCompleted.Inc()
	}
	s.latHist.Observe(lat.Nanoseconds())
	s.event(obs.ServeResult, p.tenant+"/"+p.spec.Name, lat)
	p.ob.result(res)
}

func (s *Server) event(kind obs.Kind, note string, dur time.Duration) {
	if s.opt.Sink == nil {
		return
	}
	now := s.opt.Sink.Now()
	s.opt.Sink.Record(obs.Event{
		Kind: kind, Lane: s.fleet.Nodes(), Start: now - dur, Dur: dur, Note: note,
	})
}

// Close drains the daemon: new submissions are rejected, queued
// programs fail with a shutdown Result, and Close blocks until the
// running ones finish. The fleet is left open for the caller.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var dropped []*program
	for _, ts := range s.tenants {
		for _, p := range ts.queue {
			dropped = append(dropped, p)
			ts.inUse--
		}
		ts.queue = nil
		ts.qGauge.Set(0)
	}
	s.rr = nil
	s.queued = 0
	for s.running > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
	for _, p := range dropped {
		s.cFailed.Inc()
		p.ob.result(&dist.Result{Prog: p.id, Err: "serve: daemon shutting down"})
	}
	return nil
}

// outbox serializes one client's outbound frames through a dedicated
// writer goroutine, so neither the fleet loop nor the admission path
// ever blocks on a slow client. A client that falls further behind
// than the buffer is cut off; frames for a departed client are dropped
// (its programs keep running).
type outbox struct {
	sc   *dist.ServiceConn
	mu   sync.Mutex
	ch   chan func(sc *dist.ServiceConn) error
	dead bool // no further enqueues
	once sync.Once
}

func newOutbox(sc *dist.ServiceConn) *outbox {
	ob := &outbox{sc: sc, ch: make(chan func(*dist.ServiceConn) error, 1024)}
	go func() {
		for send := range ob.ch {
			if err := send(ob.sc); err != nil {
				ob.sc.Close() //nolint:errcheck // reader sees the close
				for range ob.ch {
					// drain until close; the client is gone
				}
				return
			}
		}
	}()
	return ob
}

func (ob *outbox) enqueue(send func(*dist.ServiceConn) error) {
	ob.mu.Lock()
	if ob.dead {
		ob.mu.Unlock()
		return
	}
	select {
	case ob.ch <- send:
		ob.mu.Unlock()
	default:
		// Slow client: stop feeding it and sever the connection; its
		// ServeConn loop will close the channel on the way out.
		ob.dead = true
		ob.mu.Unlock()
		ob.sc.Close() //nolint:errcheck
	}
}

func (ob *outbox) accept(seq uint64, prog uint32) {
	ob.enqueue(func(sc *dist.ServiceConn) error { return sc.SendAccept(seq, prog) })
}

func (ob *outbox) reject(seq uint64, reason string) {
	ob.enqueue(func(sc *dist.ServiceConn) error { return sc.SendReject(seq, reason) })
}

func (ob *outbox) result(res *dist.Result) {
	ob.enqueue(func(sc *dist.ServiceConn) error { return sc.SendResult(res) })
}

func (ob *outbox) close() {
	ob.mu.Lock()
	ob.dead = true
	ob.mu.Unlock()
	ob.once.Do(func() { close(ob.ch) })
}
