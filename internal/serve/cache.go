package serve

import (
	"sync"

	"tflux/internal/cellsim"
	"tflux/internal/core"
	"tflux/internal/tsu"
)

// specKey is the admission cache's identity: every field the resolver
// and builder read. The map keys on the struct itself — not on a hash —
// so two distinct specs can never collide; the FNV hash stored in the
// entry is only the wire-level ref the fleet ships to workers.
type specKey struct {
	name    string
	param   int
	kernels int
	unroll  int
}

// cacheEntry memoizes everything admission computed for one spec: the
// built program, its source buffers, the lint verdict (caching only
// happens after the gate passed), the buffer-fit verdict (need = aligned
// arena bytes), the frozen TSU tables and the wire ref. Entries are
// immutable once published; the LRU links are guarded by the cache
// mutex.
type cacheEntry struct {
	key    specKey
	hash   uint64
	prog   *core.Program
	src    *cellsim.SharedVariableBuffer
	tables *tsu.Tables
	need   int64

	prev, next *cacheEntry
}

// programCache is a bounded LRU over admission results. The hot path
// (get on a hit) performs one map lookup and a pointer splice — no
// allocation, which TestSubmitWarmPathAllocs pins.
type programCache struct {
	mu      sync.Mutex
	cap     int
	entries map[specKey]*cacheEntry
	head    *cacheEntry // most recently used
	tail    *cacheEntry // least recently used
}

func newProgramCache(capacity int) *programCache {
	return &programCache{cap: capacity, entries: make(map[specKey]*cacheEntry, capacity)}
}

// get returns the cached entry for key (refreshing its LRU position) or
// nil.
func (c *programCache) get(key specKey) *cacheEntry {
	c.mu.Lock()
	ent := c.entries[key]
	if ent != nil && ent != c.head {
		c.unlink(ent)
		c.pushFront(ent)
	}
	c.mu.Unlock()
	return ent
}

// put publishes an entry, evicting from the cold end past capacity. A
// concurrent resolve of the same key may already have published; the
// newer entry wins (both are equivalent by construction).
func (c *programCache) put(ent *cacheEntry) {
	c.mu.Lock()
	if old := c.entries[ent.key]; old != nil {
		c.unlink(old)
	}
	c.entries[ent.key] = ent
	c.pushFront(ent)
	for len(c.entries) > c.cap && c.tail != nil {
		cold := c.tail
		c.unlink(cold)
		delete(c.entries, cold.key)
	}
	c.mu.Unlock()
}

// invalidate empties the cache: the next submission of every spec
// re-resolves and re-lints. Workers keep their installed replicas; the
// hashes simply stop being offered until re-cached (and re-hashing the
// same spec yields the same ref, so warm workers stay warm).
func (c *programCache) invalidate() {
	c.mu.Lock()
	c.entries = make(map[specKey]*cacheEntry, c.cap)
	c.head, c.tail = nil, nil
	c.mu.Unlock()
}

func (c *programCache) len() int {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return n
}

func (c *programCache) unlink(ent *cacheEntry) {
	if ent.prev != nil {
		ent.prev.next = ent.next
	} else if c.head == ent {
		c.head = ent.next
	}
	if ent.next != nil {
		ent.next.prev = ent.prev
	} else if c.tail == ent {
		c.tail = ent.prev
	}
	ent.prev, ent.next = nil, nil
}

func (c *programCache) pushFront(ent *cacheEntry) {
	ent.next = c.head
	if c.head != nil {
		c.head.prev = ent
	}
	c.head = ent
	if c.tail == nil {
		c.tail = ent
	}
}
