package serve

import (
	"net"
	"sync"
	"testing"

	"tflux/internal/cellsim"
	"tflux/internal/core"
	"tflux/internal/dist"
	"tflux/internal/obs"
)

// heldResolver adds a "held" workload to the harness registry: scale
// over Param bytes whose instances in ctx [4,8) announce themselves on
// arrived and then block until hold closes. On a 4-node × 2-kernel
// fleet with Param 16, that ctx range is exactly node 1's partition —
// the workload parks live work on node 1 (a blocked body holds its
// replica's memory lock, so one held instance pins the whole program
// there) so a sever leaves every program with outstanding instances to
// fail over.
func heldResolver(tw *testWorkloads, arrived chan struct{}, hold chan struct{}) dist.Resolver {
	base := tw.resolver()
	return func(spec dist.ProgramSpec) (*core.Program, *cellsim.SharedVariableBuffer, error) {
		if spec.Name != "held" {
			return base(spec)
		}
		n := spec.Param
		p, svb, in, out := buildScale(n, nil)
		p.Name = "held"
		p.Blocks[0].Templates[0].Body = func(ctx core.Context) {
			if ctx >= 4 && ctx < 8 {
				select {
				case arrived <- struct{}{}:
				default: // post-failover re-executions need not report
				}
				<-hold
			}
			out[ctx] = in[ctx]*3 + 7
		}
		return p, svb, nil
	}
}

// TestDrainUnderChaos severs one worker while three tenants' programs
// are mid-flight on it. All three must complete byte-identical on the
// survivors, each charged exactly the one failover with at least one
// re-dispatched instance, and the fleet must keep serving afterwards.
func TestDrainUnderChaos(t *testing.T) {
	tw := newTestWorkloads()
	arrived := make(chan struct{}, 64)
	hold := make(chan struct{})
	res := heldResolver(tw, arrived, hold)

	// Capture node 1's coordinator-side connection so the test can
	// sever it mid-run, and the fleet's metrics registry so it can see
	// when node 1 holds every program's leases.
	var severMu sync.Mutex
	var severConn net.Conn
	reg := obs.NewRegistry()
	d := startDaemon(t, 4, 2, tw, Options{Resolver: res, MaxPrograms: 8}, dist.Options{
		Metrics: reg,
		WrapConn: func(node int, c net.Conn) net.Conn {
			if node == 1 {
				severMu.Lock()
				severConn = c
				severMu.Unlock()
			}
			return c
		},
	})
	releasedHold := false
	defer func() {
		if !releasedHold {
			close(hold)
		}
		for i, err := range d.stop(t) {
			if err != nil && i != 1 {
				t.Errorf("surviving node %d: %v", i, err)
			}
		}
	}()

	const programs = 3
	inputs := make([][]byte, programs)
	pend := make([]*Pending, programs)
	clients := make([]*Client, programs)
	for i := range clients {
		clients[i] = d.dial(t, string(rune('a'+i))+"-team")
		defer clients[i].Close() //nolint:errcheck
		in := make([]byte, 16)
		for j := range in {
			in[j] = byte(17*i + j)
		}
		inputs[i] = in
		p, err := clients[i].Submit(dist.ProgramSpec{Name: "held", Param: 16},
			[]dist.RegionData{{Buffer: "in", Offset: 0, Data: in, Size: 16}})
		if err != nil {
			t.Fatal(err)
		}
		pend[i] = p
	}

	// Wait until node 1 is executing a held body and carries all three
	// programs' node-1 partitions (3 programs × ctx 4..7 = 12 leased
	// instances) — then the sever strands live work from every session.
	waitSnapshot(t, d.srv, "three running", func(s Snapshot) bool { return s.Running == programs })
	<-arrived
	inflight := reg.Gauge("dist.node1.inflight")
	waitSnapshot(t, d.srv, "node 1 holding 12 leases", func(Snapshot) bool {
		return inflight.Value() == 4*programs
	})

	severMu.Lock()
	conn := severConn
	severMu.Unlock()
	if conn == nil {
		t.Fatal("node 1 connection was never wrapped")
	}
	conn.Close() //nolint:errcheck
	waitSnapshot(t, d.srv, "node 1 marked dead", func(s Snapshot) bool { return s.AliveNodes == 3 })
	releasedHold = true
	close(hold) // unblock re-executions on survivors (and node 1's doomed lanes)

	for i, p := range pend {
		out, err := p.Wait()
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		if out.Err != "" {
			t.Fatalf("program %d failed: %s", i, out.Err)
		}
		wantScaled(t, inputs[i], out.Buffer("out"), "drained program")
		if out.Failovers != 1 {
			t.Errorf("program %d: failovers = %d, want 1", i, out.Failovers)
		}
		if out.Retries < 1 {
			t.Errorf("program %d: retries = %d, want >= 1 (its node-1 instances were re-dispatched)", i, out.Retries)
		}
	}

	// The fleet keeps serving new submissions on the survivors.
	p, err := clients[0].Submit(dist.ProgramSpec{Name: "scale", Param: 32},
		[]dist.RegionData{{Buffer: "in", Offset: 0, Data: inputs[0], Size: 16}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Wait()
	if err != nil || out.Err != "" {
		t.Fatalf("post-sever program: %v / %+v", err, out)
	}
}
