package serve

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tflux/internal/dist"
)

// TestSoak drives the daemon the way the service is meant to be run:
// four tenants pipelining a thousand small programs onto one shared
// 4-node fleet, with one worker severed mid-soak. Every program must
// complete with byte-identical output, and the run reports sustained
// programs/sec plus admission-to-completion latency quantiles from the
// daemon's own metrics. CI runs this under -race as the tfluxd-soak
// job; EXPERIMENTS.md records the numbers from a full run.
func TestSoak(t *testing.T) {
	total := 1000
	if testing.Short() {
		total = 160
	}
	const (
		tenants = 4
		window  = 8 // submissions each tenant keeps in flight
	)

	tw := newTestWorkloads()
	var severMu sync.Mutex
	var severConn net.Conn
	d := startDaemon(t, 4, 2, tw, Options{MaxPrograms: 8, MaxQueue: tenants * window, TenantQuota: 2 * window},
		dist.Options{WrapConn: func(node int, c net.Conn) net.Conn {
			if node == 2 {
				severMu.Lock()
				severConn = c
				severMu.Unlock()
			}
			return c
		}})
	defer func() {
		for i, err := range d.stop(t) {
			if err != nil && i != 2 {
				t.Errorf("surviving node %d: %v", i, err)
			}
		}
	}()

	// Sever node 2 once half the programs have completed.
	var completed atomic.Int64
	var severOnce sync.Once
	sever := func() {
		severOnce.Do(func() {
			severMu.Lock()
			conn := severConn
			severMu.Unlock()
			conn.Close() //nolint:errcheck
		})
	}

	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	perTenant := total / tenants
	for ten := 0; ten < tenants; ten++ {
		wg.Add(1)
		go func(ten int) {
			defer wg.Done()
			c := d.dial(t, fmt.Sprintf("tenant-%d", ten))
			defer c.Close() //nolint:errcheck

			inflight := make([]*Pending, 0, window)
			ins := make([][]byte, 0, window)
			drainOne := func() error {
				p, in := inflight[0], ins[0]
				inflight, ins = inflight[1:], ins[1:]
				out, err := p.Wait()
				if err != nil {
					return err
				}
				if out.Err != "" {
					return fmt.Errorf("program failed: %s", out.Err)
				}
				got := out.Buffer("out")
				for i := range in {
					if got[i] != in[i]*3+7 {
						return fmt.Errorf("out[%d] = %d, want %d", i, got[i], in[i]*3+7)
					}
				}
				if completed.Add(1) == int64(total/2) {
					sever()
				}
				return nil
			}
			for i := 0; i < perTenant; i++ {
				in := make([]byte, 24)
				for j := range in {
					in[j] = byte(ten*perTenant + i + j)
				}
				p, err := c.Submit(dist.ProgramSpec{Name: "scale", Param: 24},
					[]dist.RegionData{{Buffer: "in", Offset: 0, Data: in, Size: 24}})
				if err != nil {
					errs <- fmt.Errorf("tenant %d: submit %d: %w", ten, i, err)
					return
				}
				inflight = append(inflight, p)
				ins = append(ins, in)
				if len(inflight) == window {
					if err := drainOne(); err != nil {
						errs <- fmt.Errorf("tenant %d: %w", ten, err)
						return
					}
				}
			}
			for len(inflight) > 0 {
				if err := drainOne(); err != nil {
					errs <- fmt.Errorf("tenant %d: %w", ten, err)
					return
				}
			}
		}(ten)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	snap := d.srv.Snapshot()
	if snap.Completed != int64(total) || snap.Failed != 0 || snap.Rejected != 0 {
		t.Fatalf("completed/failed/rejected = %d/%d/%d, want %d/0/0",
			snap.Completed, snap.Failed, snap.Rejected, total)
	}
	if snap.AliveNodes != 3 {
		t.Fatalf("alive nodes = %d, want 3 (one severed mid-soak)", snap.AliveNodes)
	}
	// The soak submits one spec a thousand times with the admission cache
	// at its default capacity: all but the first submission must hit, and
	// the byte-for-byte output checks above prove hits don't change
	// results — even across a mid-soak node loss.
	if snap.CacheHits == 0 {
		t.Fatalf("soak ran with the admission cache on but recorded no hits (misses %d)", snap.CacheMisses)
	}
	var sb strings.Builder
	if err := d.srv.WriteDashboard(&sb); err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d programs, %d tenants, window %d, node 2 severed at %d completions\n%s",
		total, tenants, window, total/2, sb.String())
}
