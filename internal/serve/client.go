package serve

import (
	"fmt"
	"net"
	"sync"
	"time"

	"tflux/internal/dist"
)

// Outcome is one finished program as the daemon reported it.
type Outcome struct {
	Prog uint32
	// Err is the program's failure, empty on success. A non-empty Err
	// means the program was admitted and ran but did not complete (e.g.
	// the whole fleet was lost); rejections surface as Wait errors
	// instead.
	Err       string
	Elapsed   time.Duration
	Failovers int64
	Retries   int64
	// Regions carries the final bytes of every buffer the program
	// declared (success only).
	Regions []dist.RegionData
}

// Buffer returns the outcome's final bytes for one buffer, nil when
// absent.
func (o *Outcome) Buffer(name string) []byte {
	for i := range o.Regions {
		if o.Regions[i].Buffer == name {
			return o.Regions[i].Data
		}
	}
	return nil
}

// Pending is one in-flight submission.
type Pending struct {
	done    chan struct{}
	outcome *Outcome
	err     error
}

// Wait blocks until the submission resolves. It returns an error when
// the submission was rejected or the connection failed; otherwise the
// Outcome (whose Err field reports a program that ran and failed).
func (p *Pending) Wait() (*Outcome, error) {
	<-p.done
	return p.outcome, p.err
}

// Client is one tenant's connection to a tfluxd daemon. Submissions
// may be issued concurrently; a reader goroutine demultiplexes the
// daemon's replies to their Pendings.
type Client struct {
	sc     *dist.ServiceConn
	tenant string

	mu     sync.Mutex
	seq    uint64
	bySeq  map[uint64]*Pending // awaiting Accept/Reject
	byProg map[uint32]*Pending // accepted, awaiting Result
	err    error               // terminal transport error
}

// Dial connects to a daemon and identifies as tenant.
func Dial(addr, tenant string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, tenant), nil
}

// NewClient wraps an established connection (the hook for wrapping the
// conn in fault injection first) and starts the reply reader.
func NewClient(conn net.Conn, tenant string) *Client {
	c := &Client{
		sc:     dist.NewServiceConn(conn),
		tenant: tenant,
		bySeq:  make(map[uint64]*Pending),
		byProg: make(map[uint32]*Pending),
	}
	go c.readLoop()
	return c
}

// Submit sends one program submission: the spec both sides will
// resolve, plus optional input regions overlaid onto the program's
// declared buffers before it runs.
func (c *Client) Submit(spec dist.ProgramSpec, regions []dist.RegionData) (*Pending, error) {
	p := &Pending{done: make(chan struct{})}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.seq++
	seq := c.seq
	c.bySeq[seq] = p
	c.mu.Unlock()

	err := c.sc.SendSubmit(&dist.Submit{Seq: seq, Tenant: c.tenant, Spec: spec, Regions: regions})
	if err != nil {
		c.mu.Lock()
		delete(c.bySeq, seq)
		c.mu.Unlock()
		return nil, err
	}
	return p, nil
}

func (c *Client) readLoop() {
	for {
		f, err := c.sc.Recv()
		if err != nil {
			c.fail(fmt.Errorf("serve: connection to daemon lost: %w", err))
			return
		}
		switch {
		case f.Accept != nil:
			c.mu.Lock()
			if p := c.bySeq[f.Accept.Seq]; p != nil {
				delete(c.bySeq, f.Accept.Seq)
				c.byProg[f.Accept.Prog] = p
			}
			c.mu.Unlock()
		case f.Reject != nil:
			c.mu.Lock()
			p := c.bySeq[f.Reject.Seq]
			delete(c.bySeq, f.Reject.Seq)
			c.mu.Unlock()
			if p != nil {
				p.err = fmt.Errorf("serve: submission rejected: %s", f.Reject.Reason)
				close(p.done)
			}
		case f.Result != nil:
			res := f.Result
			c.mu.Lock()
			p := c.byProg[res.Prog]
			delete(c.byProg, res.Prog)
			c.mu.Unlock()
			if p == nil {
				continue
			}
			out := &Outcome{
				Prog:      res.Prog,
				Err:       res.Err,
				Elapsed:   time.Duration(res.ElapsedNS),
				Failovers: int64(res.Failovers),
				Retries:   int64(res.Retries),
			}
			// The decoded regions alias the frame buffer, which Recv
			// hands off to us wholesale — safe to retain without a copy.
			out.Regions = res.Regions
			p.outcome = out
			close(p.done)
		default:
			c.fail(fmt.Errorf("serve: unexpected frame from daemon"))
			return
		}
	}
}

// fail resolves every pending submission with err and poisons the
// client.
func (c *Client) fail(err error) {
	c.mu.Lock()
	c.err = err
	pend := make([]*Pending, 0, len(c.bySeq)+len(c.byProg))
	for _, p := range c.bySeq {
		pend = append(pend, p)
	}
	for _, p := range c.byProg {
		pend = append(pend, p)
	}
	c.bySeq = make(map[uint64]*Pending)
	c.byProg = make(map[uint32]*Pending)
	c.mu.Unlock()
	for _, p := range pend {
		p.err = err
		close(p.done)
	}
}

// Close tears down the connection; in-flight submissions resolve with
// a connection error.
func (c *Client) Close() error { return c.sc.Close() }
