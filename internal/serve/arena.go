package serve

import (
	"fmt"
	"sort"
)

// arenaAlign is the allocation granularity. Rounding every block up to
// a cache line keeps neighboring tenants' buffers off shared lines and
// keeps the free list short.
const arenaAlign = 64

// span is one free extent, [off, off+size).
type span struct {
	off, size int64
}

// arena is the daemon's canonical-buffer memory: one backing slice from
// which every admitted program's coordinator-side buffers are carved.
// Each allocation is handed out as a capped three-index subslice, so a
// program's buffer physically cannot index into a neighbor's bytes —
// the isolation holds even against code that ignores every declared
// bound, because the capacity itself ends at the allocation.
//
// The free list is first-fit with coalescing on release: admission
// traffic is thousands of short-lived programs with a handful of
// buffers each, so the list stays short and first-fit keeps the arena
// compact. Not safe for concurrent use; the scheduler owns it.
type arena struct {
	buf  []byte
	free []span // sorted by offset, adjacent spans coalesced
}

func newArena(size int64) *arena {
	if size < arenaAlign {
		size = arenaAlign
	}
	return &arena{buf: make([]byte, size), free: []span{{0, size}}}
}

func alignUp(n int64) int64 {
	if n < 1 {
		n = 1
	}
	return (n + arenaAlign - 1) &^ (arenaAlign - 1)
}

// alloc carves n bytes (rounded up to the alignment) out of the first
// free span that fits, returning the capped subslice and its offset
// (the release handle). ok is false when no span fits.
func (a *arena) alloc(n int64) (b []byte, off int64, ok bool) {
	n = alignUp(n)
	for i := range a.free {
		s := &a.free[i]
		if s.size < n {
			continue
		}
		off = s.off
		s.off += n
		s.size -= n
		if s.size == 0 {
			a.free = append(a.free[:i], a.free[i+1:]...)
		}
		return a.buf[off : off+n : off+n], off, true
	}
	return nil, 0, false
}

// release returns the n bytes at off (as rounded by alloc) to the free
// list, coalescing with adjacent spans. Releasing a region that
// overlaps the free list is a bookkeeping bug and panics.
func (a *arena) release(off, n int64) {
	n = alignUp(n)
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off >= off })
	if (i > 0 && a.free[i-1].off+a.free[i-1].size > off) ||
		(i < len(a.free) && off+n > a.free[i].off) {
		panic(fmt.Sprintf("serve: arena release [%d,+%d) overlaps free list", off, n))
	}
	// Merge with the right neighbor, then the left.
	if i < len(a.free) && off+n == a.free[i].off {
		a.free[i].off = off
		a.free[i].size += n
	} else {
		a.free = append(a.free, span{})
		copy(a.free[i+1:], a.free[i:])
		a.free[i] = span{off, n}
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].size == a.free[i].off {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// available returns the total free bytes (an upper bound on what a
// multi-buffer allocation can get; fragmentation may deny less).
func (a *arena) available() int64 {
	var total int64
	for _, s := range a.free {
		total += s.size
	}
	return total
}

// size returns the arena's capacity.
func (a *arena) size() int64 { return int64(len(a.buf)) }
