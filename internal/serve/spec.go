// Package serve is the TFlux service layer: a long-lived coordinator
// daemon (tfluxd) that accepts DDM program submissions from many
// clients and multiplexes them over one shared worker fleet.
//
// DThread bodies are Go closures and cannot cross the wire, so a
// submission names a program instead of carrying it: the client ships a
// dist.ProgramSpec and both the daemon and every worker resolve it
// through the same Resolver registry, yielding structurally identical
// replicas by construction (the TFluxDist model, lifted from one
// program per process to a program stream).
package serve

import (
	"tflux/internal/cellsim"
	"tflux/internal/core"
	"tflux/internal/dist"
	"tflux/internal/workload"
)

// WorkloadResolver resolves specs against the paper's benchmark suite:
// Spec.Name selects the workload.ByName entry, Param its problem size,
// and Kernels/Unroll its DDM decomposition. Each call builds a fresh
// Job — fresh input arrays, fresh output — so concurrent programs never
// share state. This is tfluxd's default resolver.
func WorkloadResolver() dist.Resolver {
	return func(spec dist.ProgramSpec) (*core.Program, *cellsim.SharedVariableBuffer, error) {
		ws, err := workload.ByName(spec.Name)
		if err != nil {
			return nil, nil, err
		}
		job := ws.Make(spec.Param)
		prog, err := job.Build(spec.Kernels, spec.Unroll)
		if err != nil {
			return nil, nil, err
		}
		job.ResetOutput()
		return prog, job.SharedBuffers(), nil
	}
}
