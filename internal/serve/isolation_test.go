package serve

import (
	"strings"
	"testing"

	"tflux/internal/dist"
)

// TestIsolationAdmissionReject: a program whose Access model reaches
// for a buffer outside its declared namespace is rejected at admission,
// with the ddmlint finding in the Reject frame — it never runs, so the
// attack never touches the fleet.
func TestIsolationAdmissionReject(t *testing.T) {
	tw := newTestWorkloads()
	d := startDaemon(t, 2, 1, tw, Options{}, dist.Options{})
	defer d.stop(t)
	c := d.dial(t, "mallory")
	defer c.Close() //nolint:errcheck

	p, err := c.Submit(dist.ProgramSpec{Name: "evil"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Wait()
	if err == nil {
		t.Fatal("evil program was admitted")
	}
	for _, want := range []string{"ddmlint", "victim"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("rejection should carry the lint finding (%q): %v", want, err)
		}
	}
	snap := d.srv.Snapshot()
	if snap.Rejected != 1 || snap.Accepted != 0 {
		t.Fatalf("rejected/accepted = %d/%d, want 1/0", snap.Rejected, snap.Accepted)
	}
}

// TestIsolationRuntimeGuard proves the defense in depth behind the
// lint gate: with admission linting disabled, the evil program runs —
// and its out-of-namespace export still cannot apply, because the
// coordinator's per-program buffer namespace has nowhere to put it.
// The program fails; the node it ran on survives (one tenant's bad
// program must not cost the shared fleet a worker); and a concurrent
// well-behaved tenant's result is byte-identical to the expected one.
func TestIsolationRuntimeGuard(t *testing.T) {
	tw := newTestWorkloads()
	d := startDaemon(t, 2, 2, tw, Options{DisableLint: true}, dist.Options{})
	defer d.stop(t)
	good := d.dial(t, "alice")
	defer good.Close() //nolint:errcheck
	mal := d.dial(t, "mallory")
	defer mal.Close() //nolint:errcheck

	// Pin a well-behaved program in the running state so the attack
	// runs concurrently with it.
	in := make([]byte, 32)
	for i := range in {
		in[i] = byte(100 + i)
	}
	pg, err := good.Submit(dist.ProgramSpec{Name: "gated", Param: 32},
		[]dist.RegionData{{Buffer: "in", Offset: 0, Data: in, Size: 32}})
	if err != nil {
		t.Fatal(err)
	}
	waitSnapshot(t, d.srv, "victim running", func(s Snapshot) bool { return s.Running == 1 })

	pe, err := mal.Submit(dist.ProgramSpec{Name: "evil"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := pe.Wait()
	if err != nil {
		t.Fatalf("evil submission should be admitted with lint off, got %v", err)
	}
	if !strings.Contains(out.Err, "outside its namespace") {
		t.Fatalf("evil program outcome: want namespace violation, got %+v", out)
	}
	if alive := d.srv.Snapshot().AliveNodes; alive != 2 {
		t.Fatalf("alive nodes = %d after namespace violation, want 2 (program faults must not kill nodes)", alive)
	}

	tw.release()
	og, err := pg.Wait()
	if err != nil || og.Err != "" {
		t.Fatalf("victim program: %v / %+v", err, og)
	}
	wantScaled(t, in, og.Buffer("out"), "victim after attack")
	if og.Failovers != 0 {
		t.Fatalf("victim charged %d failovers for the attacker's fault", og.Failovers)
	}
}

// TestIsolationBoundsGuard: the second runtime guard — an export that
// names the program's own buffer but overflows its declared size is
// also rejected program-scoped (the arena carving is capped, so even a
// guard bug could not reach a neighbor's bytes).
func TestIsolationBoundsGuard(t *testing.T) {
	tw := newTestWorkloads()
	d := startDaemon(t, 1, 1, tw, Options{DisableLint: true}, dist.Options{})
	defer d.stop(t)
	c := d.dial(t, "mallory")
	defer c.Close() //nolint:errcheck

	p, err := c.Submit(dist.ProgramSpec{Name: "overflow"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Err, "outside buffer") {
		t.Fatalf("overflow outcome: want bounds violation, got %+v", out)
	}
	if alive := d.srv.Snapshot().AliveNodes; alive != 1 {
		t.Fatalf("alive nodes = %d, want 1", alive)
	}
}
