// Benchmarks regenerating the paper's evaluation, one testing.B target per
// table/figure (see DESIGN.md §4 and EXPERIMENTS.md for the full-scale
// runs via cmd/tfluxbench — these benches use the Small configurations so
// `go test -bench=.` finishes quickly), plus micro-benchmarks of the
// runtime primitives on the critical path.
//
// Custom metrics: figure benches report "speedup" (sequential/parallel,
// the paper's y-axis) so the figure's shape is visible straight from the
// bench output; the TSU-latency bench reports "slowdown128" (the §3.3
// claim is that it stays below 1.01).
package tflux_test

import (
	"sync"
	"testing"
	"time"

	"tflux/internal/cellsim"
	"tflux/internal/core"
	"tflux/internal/dist"
	"tflux/internal/hardsim"
	"tflux/internal/mem"
	"tflux/internal/rts"
	"tflux/internal/sim"
	"tflux/internal/tsu"
	"tflux/internal/vtime"
	"tflux/internal/workload"
)

// BenchmarkTable1Workloads runs every suite benchmark's sequential
// reference at its Small native size — the baseline row of Table 1.
func BenchmarkTable1Workloads(b *testing.B) {
	for _, spec := range workload.Suite() {
		sizes, _ := spec.Sizes(workload.Native)
		job := spec.Make(sizes[workload.Small])
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				job.RunSequential()
			}
		})
	}
}

// BenchmarkFig5Hard regenerates one cell of Figure 5 per suite benchmark:
// the Small problem on an 8-core TFluxHard machine. The reported "speedup"
// metric is simulated-cycles sequential / parallel.
func BenchmarkFig5Hard(b *testing.B) {
	for _, spec := range workload.Suite() {
		sizes, ok := spec.Sizes(workload.Simulated)
		if !ok {
			continue
		}
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				job := spec.Make(sizes[workload.Small])
				p, err := job.Build(8, 4)
				if err != nil {
					b.Fatal(err)
				}
				seq, err := hardsim.Sequential(p.Buffers, job.SequentialSteps(), hardsim.Config{})
				if err != nil {
					b.Fatal(err)
				}
				res, err := hardsim.Run(p, hardsim.Config{Cores: 8})
				if err != nil {
					b.Fatal(err)
				}
				if err := job.Verify(); err != nil {
					b.Fatal(err)
				}
				speedup = float64(seq.Cycles) / float64(res.Cycles)
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// BenchmarkFig6Soft regenerates one cell of Figure 6 per suite benchmark:
// the Small problem under the TFluxSoft runtime with 4 kernels. Wall-clock
// parallel runs are what testing.B times; the "speedup" metric compares
// against the virtual-time model when the host is single-core.
func BenchmarkFig6Soft(b *testing.B) {
	for _, spec := range workload.Suite() {
		sizes, _ := sizesOrSkip(spec, workload.Native)
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			job := spec.Make(sizes[workload.Small])
			p, err := job.Build(4, 32)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				job.ResetOutput()
				if _, err := rts.Run(p, rts.Options{Kernels: 4}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := job.Verify(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFig7Cell regenerates one cell of Figure 7 per Cell-evaluated
// benchmark: the Small problem on the Cell substrate with 4 SPEs.
func BenchmarkFig7Cell(b *testing.B) {
	for _, spec := range workload.Suite() {
		sizes, ok := spec.Sizes(workload.Cell)
		if !ok {
			continue // FFT is not in Figure 7
		}
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			job := spec.Make(sizes[workload.Small])
			p, err := job.Build(4, 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				job.ResetOutput()
				if _, err := cellsim.Run(p, job.SharedBuffers(), cellsim.Config{SPEs: 4}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := job.Verify(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkTSULatency regenerates the §3.3 sensitivity claim: the
// "slowdown128" metric is runtime at TSULat=128 over TSULat=1 and should
// stay below 1.01 (<1%).
func BenchmarkTSULatency(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		cycles := func(lat sim.Time) sim.Time {
			job := workload.NewMMult(128)
			p, err := job.Build(8, 8)
			if err != nil {
				b.Fatal(err)
			}
			res, err := hardsim.Run(p, hardsim.Config{Cores: 8, TSULat: lat})
			if err != nil {
				b.Fatal(err)
			}
			return res.Cycles
		}
		slowdown = float64(cycles(128)) / float64(cycles(1))
	}
	b.ReportMetric(slowdown, "slowdown128")
}

// BenchmarkUnroll regenerates the unroll study's two endpoints on the
// virtual-time soft platform: "speedup1" (unroll 1, fine-grained and
// overhead/cache-bound) vs "speedup16" (unroll 16, the paper's
// coarse-grain regime). The gap is §6.2.2's observation that TFluxSoft
// needs coarse DThreads.
func BenchmarkUnroll(b *testing.B) {
	var s1, s16 float64
	for i := 0; i < b.N; i++ {
		measure := func(unroll int) float64 {
			job := workload.NewMMult(256)
			job.RunSequential() // warm caches before timing the baseline
			seq := testingMeasure(job.RunSequential)
			p, err := job.Build(4, unroll)
			if err != nil {
				b.Fatal(err)
			}
			job.ResetOutput()
			res, err := vtime.Run(p, vtime.Config{Kernels: 4})
			if err != nil {
				b.Fatal(err)
			}
			return seq.Seconds() / res.Makespan.Seconds()
		}
		s1, s16 = measure(1), measure(16)
	}
	b.ReportMetric(s1, "speedup1")
	b.ReportMetric(s16, "speedup16")
}

// BenchmarkTSUBudget reports the §4.1 hardware-cost estimate as a metric.
func BenchmarkTSUBudget(b *testing.B) {
	var t int64
	for i := 0; i < b.N; i++ {
		t = hardsim.TransistorBudget(256, 27)
	}
	b.ReportMetric(float64(t), "transistors")
}

// --- Micro-benchmarks of the runtime primitives ---

// BenchmarkTUBPushDrain measures the TUB fast path: one completion record
// deposited and drained.
func BenchmarkTUBPushDrain(b *testing.B) {
	tub := tsu.NewTUB(4, tsu.TUBConfig{})
	var recs []tsu.Completion
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tub.Push(tsu.Completion{Inst: core.Instance{Thread: 1, Ctx: core.Context(i)}})
		recs = tub.Drain(recs[:0])
	}
}

// BenchmarkStateComplete measures the TSU synchronization engine's
// post-processing of one completion (expand + decrement + done). The
// state is rebuilt whenever its instance pool is exhausted, so ns/op is
// honest for any b.N.
func BenchmarkStateComplete(b *testing.B) {
	const pool = 1 << 20
	newState := func() *tsu.State {
		p := core.NewProgram("bench")
		blk := p.AddBlock()
		w := core.NewTemplate(1, "w", func(core.Context) {})
		w.Instances = pool
		sink := core.NewTemplate(2, "s", func(core.Context) {})
		w.Then(2, core.AllToOne{})
		blk.Add(w)
		blk.Add(sink)
		st, err := tsu.NewState(p, 8)
		if err != nil {
			b.Fatal(err)
		}
		st.Complete(st.Start().Inst, 0) // load the block
		return st
	}
	st := newState()
	next := core.Context(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if next == pool-1 {
			b.StopTimer()
			st = newState()
			next = 0
			b.StartTimer()
		}
		st.Complete(core.Instance{Thread: 1, Ctx: next}, 0)
		next++
	}
}

// BenchmarkRTSDispatch measures the end-to-end software-runtime cost per
// DThread: thousands of trivial threads through kernels, TUB and emulator.
func BenchmarkRTSDispatch(b *testing.B) {
	const threads = 4096
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := core.NewProgram("dispatch")
		t := core.NewTemplate(1, "t", func(core.Context) {})
		t.Instances = threads
		p.AddBlock().Add(t)
		if _, err := rts.Run(p, rts.Options{Kernels: 4}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/threads, "ns/dthread")
}

// BenchmarkMESIAccess measures the cache model's per-line cost with
// cross-core sharing.
func BenchmarkMESIAccess(b *testing.B) {
	h := mem.NewHierarchy(4, mem.DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := i & 3
		h.Access(c, uint64(i%4096)*64, 64, i%7 == 0)
	}
}

// BenchmarkHardSimThread measures simulated-machine throughput: cycles of
// event-loop work per simulated DThread.
func BenchmarkHardSimThread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := core.NewProgram("hs")
		t := core.NewTemplate(1, "t", func(core.Context) {})
		t.Instances = 1024
		t.Cost = func(core.Context) int64 { return 100 }
		p.AddBlock().Add(t)
		if _, err := hardsim.Run(p, hardsim.Config{Cores: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func sizesOrSkip(spec workload.Spec, pf workload.Platform) ([3]int, bool) {
	return spec.Sizes(pf)
}

// testingMeasure times one call of f.
func testingMeasure(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// BenchmarkTUBSegmentation is the §4.2 ablation behind the TUB's
// partitioned design: many kernels depositing completions concurrently
// against a segmented TUB vs the single-lock variant. The "misses" metric
// counts try-lock skips (contention the segmentation absorbs). The win
// only materializes when writers truly run in parallel; on a single-CPU
// host the single lock is uncontended and the segment scan is pure
// overhead — which is itself the paper's point that the design targets
// multiprocessors.
func BenchmarkTUBSegmentation(b *testing.B) {
	run := func(b *testing.B, cfg tsu.TUBConfig) {
		const writers = 8
		tub := tsu.NewTUB(writers, cfg)
		stop := make(chan struct{})
		go func() {
			var recs []tsu.Completion
			for {
				recs = tub.Drain(recs[:0])
				if len(recs) == 0 && !tub.Wait(stop) {
					return
				}
			}
		}()
		b.ResetTimer()
		var wg sync.WaitGroup
		per := b.N/writers + 1
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					tub.Push(tsu.Completion{Inst: core.Instance{Thread: 1, Ctx: core.Context(i)}, Kernel: tsu.KernelID(w)})
				}
			}(w)
		}
		wg.Wait()
		b.StopTimer()
		close(stop)
		b.ReportMetric(float64(tub.Stats().TryMisses)/float64(b.N), "misses/op")
	}
	b.Run("segmented", func(b *testing.B) { run(b, tsu.TUBConfig{Segments: 16, SegmentCap: 64}) })
	b.Run("singlelock", func(b *testing.B) { run(b, tsu.TUBConfig{SingleLock: true, SegmentCap: 64}) })
}

// BenchmarkDistDispatch measures the distributed runtime's per-DThread
// round-trip cost — dispatch with imports over loopback TCP, remote
// execution, export return, post-processing — reported as ns/dthread.
func BenchmarkDistDispatch(b *testing.B) {
	const threads = 256
	for i := 0; i < b.N; i++ {
		build := func() (*core.Program, *cellsim.SharedVariableBuffer) {
			data := make([]byte, threads*8)
			p := core.NewProgram("distbench")
			p.AddBuffer("data", int64(len(data)))
			t := core.NewTemplate(1, "t", func(core.Context) {})
			t.Instances = threads
			t.Access = func(ctx core.Context) []core.MemRegion {
				return []core.MemRegion{{Buffer: "data", Offset: int64(ctx) * 8, Size: 8, Write: true}}
			}
			p.AddBlock().Add(t)
			svb := cellsim.NewSharedVariableBuffer()
			svb.Register("data", data)
			return p, svb
		}
		if _, _, err := dist.RunLocal(build, 2, 2); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/threads, "ns/dthread")
}

// BenchmarkThreadIndexing is the §4.2 Thread-Indexing ablation: Ready
// Count updates with the TKT (direct SM access) vs the sequential SM
// search it replaces, at the paper's 27-kernel scale.
func BenchmarkThreadIndexing(b *testing.B) {
	const pool = 1 << 20
	run := func(b *testing.B, linear bool) {
		newState := func() *tsu.State {
			p := core.NewProgram("tktbench")
			blk := p.AddBlock()
			w := core.NewTemplate(1, "w", func(core.Context) {})
			w.Instances = pool
			sink := core.NewTemplate(2, "s", func(core.Context) {})
			w.Then(2, core.AllToOne{})
			blk.Add(w)
			blk.Add(sink)
			st, err := tsu.NewState(p, 27)
			if err != nil {
				b.Fatal(err)
			}
			st.SetLinearSMSearch(linear)
			st.Complete(st.Start().Inst, 0)
			return st
		}
		st := newState()
		next := core.Context(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if next == pool-1 {
				b.StopTimer()
				st = newState()
				next = 0
				b.StartTimer()
			}
			st.Complete(core.Instance{Thread: 1, Ctx: next}, 0)
			next++
		}
	}
	b.Run("tkt", func(b *testing.B) { run(b, false) })
	b.Run("linearsearch", func(b *testing.B) { run(b, true) })
}
